//! CLI for sirep-lint.
//!
//! ```text
//! sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 config/usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = match sirep_lint::load_config_file(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sirep-lint: config error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match sirep_lint::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sirep-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    if !quiet {
        for w in &report.warnings {
            eprintln!("warning: {w}");
        }
        eprintln!(
            "sirep-lint: {} file(s), {} violation(s), {} suppressed",
            report.files_scanned,
            report.violations.len(),
            report.suppressed
        );
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sirep-lint: {msg}");
    eprintln!("usage: sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet]");
    ExitCode::from(2)
}
