//! CLI for sirep-lint.
//!
//! ```text
//! sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet]
//!            [--json <path>] [--deny-stale]
//! ```
//!
//! `--json` writes a machine-readable report (violations, suppressed
//! findings with their suppression channel, warnings) for CI artifact
//! upload. `--deny-stale` escalates stale-suppression warnings to a
//! failing exit — CI runs with it so dead suppressions cannot accumulate.
//!
//! Exit codes: 0 clean, 1 violations found (or stale suppressions under
//! `--deny-stale`), 2 config/usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json: Option<PathBuf> = None;
    let mut deny_stale = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--deny-stale" => deny_stale = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet] \
                     [--json <path>] [--deny-stale]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = match sirep_lint::load_config_file(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sirep-lint: config error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match sirep_lint::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sirep-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, sirep_lint::report_to_json(&report)) {
            eprintln!("sirep-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    let stale_fail = deny_stale && !report.warnings.is_empty();
    if !quiet || stale_fail {
        for w in &report.warnings {
            if stale_fail {
                eprintln!("error (--deny-stale): {w}");
            } else {
                eprintln!("warning: {w}");
            }
        }
        eprintln!(
            "sirep-lint: {} file(s), {} violation(s), {} suppressed",
            report.files_scanned,
            report.violations.len(),
            report.suppressed.len()
        );
    }
    if report.violations.is_empty() && !stale_fail {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sirep-lint: {msg}");
    eprintln!(
        "usage: sirep-lint [--root <dir>] [--config <lint.toml>] [--quiet] \
         [--json <path>] [--deny-stale]"
    );
    ExitCode::from(2)
}
