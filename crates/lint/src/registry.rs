//! Cross-artifact registry checks.
//!
//! The protocol's observability artifacts form closed registries that the
//! compiler only partially checks:
//!
//! - **wire-tag-registry**: every `impl Wire` that writes a discriminant
//!   byte must use each tag once, and the decode arms must cover exactly
//!   the encoded tag set. The compiler cannot see that `out.push(7)` in
//!   `encode` and `7 => ..` in `decode` talk about the same byte; a
//!   skipped or duplicated tag silently corrupts every peer.
//! - **journal-consumer-registry**: every `EventKind` variant must be
//!   consumed by each declared consumer (the offline auditor, the
//!   Perfetto exporter) or sit on that consumer's justified ignore-list.
//!   A new event that the auditor silently ignores is an invariant with
//!   no referee.
//! - **chaos-point-registry**: every `CrashPoint`/`PausePoint` variant
//!   must have a hook site (`crash_point(CrashPoint::X)` /
//!   `pause_point(PausePoint::Y)`) in the protocol code. An armed point
//!   with no hook never fires, and the failover case it was written to
//!   exercise goes untested forever.
//!
//! Wire tags are per-file (an `impl Wire` never spans files) and run
//! inside `check_file`, so inline suppressions work. The other two are
//! cross-file: [`Scan::scan_file`] collects per-file facts during the
//! workspace walk and [`Scan::finish`] reports once every file has been
//! seen. Cross-file findings can only be suppressed via lint.toml
//! `[[suppress]]` (there is no single line to hang a directive on).

use crate::lexer::Tok;
use crate::rules::{
    file_in_scope, file_matches, Violation, RULE_CHAOS_POINTS, RULE_JOURNAL_CONSUMERS,
    RULE_WIRE_TAGS,
};
use crate::scopes::Func;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, Default)]
pub struct WireTagRule {
    /// File scope; empty = every scanned file.
    pub files: Vec<String>,
}

/// One justified "this consumer deliberately ignores this variant" entry,
/// parsed from `"<consumer-file>: <Variant>: <reason>"`.
#[derive(Debug, Clone)]
pub struct ConsumerIgnore {
    pub file: String,
    pub variant: String,
    pub reason: String,
}

#[derive(Debug, Clone, Default)]
pub struct JournalConsumerRule {
    /// File (suffix) declaring the enum.
    pub enum_file: String,
    pub enum_name: String,
    /// Files that must each consume every variant.
    pub consumers: Vec<String>,
    pub ignore: Vec<ConsumerIgnore>,
}

#[derive(Debug, Clone, Default)]
pub struct ChaosPointRule {
    /// `(declaring file suffix, enum name)` pairs.
    pub enums: Vec<(String, String)>,
    /// Protocol files where `Enum::Variant` hook sites must appear.
    pub hook_files: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct RegistryRules {
    pub wire_tags: Option<WireTagRule>,
    pub journal_consumers: Option<JournalConsumerRule>,
    pub chaos_points: Option<ChaosPointRule>,
}

// ---------------------------------------------------------------------
// wire-tag-registry (per-file)
// ---------------------------------------------------------------------

/// Check every `impl Wire for T` in one file: encode tags unique, decode
/// tags unique, and the two sets equal.
pub fn check_wire_tags(funcs: &[Func], file: &str, rule: &WireTagRule, out: &mut Vec<Violation>) {
    if !rule.files.is_empty() && !file_in_scope(file, &rule.files) {
        return;
    }
    // Pair encode/decode by impl type. An impl never spans files, and no
    // file in this workspace has two `Wire` impls for one type name.
    let mut pairs: BTreeMap<&str, (Option<&Func>, Option<&Func>)> = BTreeMap::new();
    for f in funcs {
        if f.is_test || f.impl_trait.as_deref() != Some("Wire") {
            continue;
        }
        let Some(ty) = f.impl_type.as_deref() else { continue };
        let slot = pairs.entry(ty).or_default();
        match f.name.as_str() {
            "encode" => slot.0 = Some(f),
            "decode" => slot.1 = Some(f),
            _ => {}
        }
    }
    for (ty, (enc, dec)) in pairs {
        let enc_tags = enc.map(|f| encode_tags(&f.body)).unwrap_or_default();
        let dec_tags = dec.map(|f| decode_tags(&f.body)).unwrap_or_default();
        report_dupes(ty, "encode", &enc_tags, file, out);
        report_dupes(ty, "decode", &dec_tags, file, out);
        let enc_set: BTreeSet<u64> = enc_tags.iter().map(|&(v, _)| v).collect();
        let dec_set: BTreeSet<u64> = dec_tags.iter().map(|&(v, _)| v).collect();
        if enc_set == dec_set || (enc_set.is_empty() && dec_set.is_empty()) {
            continue;
        }
        let missing_dec: Vec<u64> = enc_set.difference(&dec_set).copied().collect();
        let missing_enc: Vec<u64> = dec_set.difference(&enc_set).copied().collect();
        let line = dec.or(enc).map_or(0, |f| f.line);
        let mut parts = Vec::new();
        if !missing_dec.is_empty() {
            parts.push(format!("encoded but never decoded: {}", fmt_tags(&missing_dec)));
        }
        if !missing_enc.is_empty() {
            parts.push(format!("decoded but never encoded: {}", fmt_tags(&missing_enc)));
        }
        out.push(Violation {
            rule: RULE_WIRE_TAGS.into(),
            file: file.into(),
            line,
            msg: format!(
                "`impl Wire for {ty}` has asymmetric tag bytes ({}): every tag written by \
                 `encode` must have a `decode` arm and vice versa",
                parts.join("; ")
            ),
        });
    }
}

fn fmt_tags(tags: &[u64]) -> String {
    tags.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join(", ")
}

fn report_dupes(ty: &str, side: &str, tags: &[(u64, u32)], file: &str, out: &mut Vec<Violation>) {
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    for &(v, line) in tags {
        if let Some(first) = seen.get(&v) {
            out.push(Violation {
                rule: RULE_WIRE_TAGS.into(),
                file: file.into(),
                line,
                msg: format!(
                    "`impl Wire for {ty}` {side} uses tag {v} twice (first at line {first}): \
                     wire tags must be unique per message"
                ),
            });
        } else {
            seen.insert(v, line);
        }
    }
}

/// Tag literals in an `encode` body: `push(<int>)`, `<int>.encode(..)`,
/// and `=> <int>` match-arm values (the `let tag = match .. {..}` idiom).
fn encode_tags(body: &[Tok]) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.ident() == Some("push")
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
            && body.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(v) = body.get(i + 2).and_then(Tok::int_lit) {
                out.push((v, body[i + 2].line));
            }
        } else if let Some(v) = t.int_lit() {
            // `<int>.encode(..)` is a tag only when the literal is not
            // itself a field access: `self.0.encode(out)` is tuple-field
            // forwarding, not a tag byte.
            let dot_encode = body.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && body.get(i + 2).and_then(Tok::ident) == Some("encode")
                && !(i >= 1 && body[i - 1].is_punct('.'));
            let arm_value = i >= 2 && body[i - 1].is_punct('>') && body[i - 2].is_punct('=');
            if dot_encode || arm_value {
                out.push((v, t.line));
            }
        }
    }
    out
}

/// Tag literals in a `decode` body: `<int> =>` match-arm patterns.
fn decode_tags(body: &[Tok]) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if let Some(v) = t.int_lit() {
            if body.get(i + 1).is_some_and(|t| t.is_punct('='))
                && body.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                out.push((v, t.line));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Cross-file scans (journal consumers, chaos points)
// ---------------------------------------------------------------------

/// Facts collected across the workspace walk for the cross-file checks.
#[derive(Debug, Default)]
pub struct Scan {
    /// Enum name -> declared variants `(name, line)`, from the configured
    /// declaring file.
    enums: BTreeMap<String, Vec<(String, u32)>>,
    /// Enum name -> declaring file as actually seen (for reporting).
    enum_seen_in: BTreeMap<String, String>,
    /// Consumer file pattern -> variants referenced (`Enum::Variant`) in
    /// that consumer's non-test code.
    consumer_uses: BTreeMap<String, BTreeSet<String>>,
    /// Chaos enum name -> variants referenced across all hook files.
    hook_uses: BTreeMap<String, BTreeSet<String>>,
}

impl Scan {
    /// Collect registry facts from one lexed file.
    pub fn scan_file(&mut self, file: &str, toks: &[Tok], funcs: &[Func], rules: &RegistryRules) {
        let mut wanted_enums: Vec<&str> = Vec::new();
        if let Some(jc) = &rules.journal_consumers {
            if file_matches(file, &jc.enum_file) {
                wanted_enums.push(&jc.enum_name);
            }
            for pat in &jc.consumers {
                if file_matches(file, pat) {
                    let uses = qualified_uses(toks, funcs, &jc.enum_name);
                    self.consumer_uses.entry(pat.clone()).or_default().extend(uses);
                }
            }
        }
        if let Some(cp) = &rules.chaos_points {
            for (efile, ename) in &cp.enums {
                if file_matches(file, efile) {
                    wanted_enums.push(ename);
                }
            }
            if file_in_scope(file, &cp.hook_files) {
                for (_, ename) in &cp.enums {
                    let uses = qualified_uses(toks, funcs, ename);
                    self.hook_uses.entry(ename.clone()).or_default().extend(uses);
                }
            }
        }
        for ename in wanted_enums {
            if let Some(vars) = enum_variants(toks, ename) {
                self.enums.insert(ename.to_string(), vars);
                self.enum_seen_in.insert(ename.to_string(), file.to_string());
            }
        }
    }

    /// Report once the whole workspace has been scanned.
    pub fn finish(&self, rules: &RegistryRules, out: &mut Vec<Violation>) {
        if let Some(jc) = &rules.journal_consumers {
            self.finish_journal(jc, out);
        }
        if let Some(cp) = &rules.chaos_points {
            self.finish_chaos(cp, out);
        }
    }

    fn finish_journal(&self, jc: &JournalConsumerRule, out: &mut Vec<Violation>) {
        let Some(variants) = self.enums.get(&jc.enum_name) else {
            out.push(Violation {
                rule: RULE_JOURNAL_CONSUMERS.into(),
                file: jc.enum_file.clone(),
                line: 0,
                msg: format!(
                    "enum `{}` not found in `{}` — fix the [rules.journal-consumer-registry] \
                     config",
                    jc.enum_name, jc.enum_file
                ),
            });
            return;
        };
        let declared: BTreeSet<&str> = variants.iter().map(|(v, _)| v.as_str()).collect();
        for ig in &jc.ignore {
            if !jc.consumers.iter().any(|c| c == &ig.file) {
                out.push(Violation {
                    rule: RULE_JOURNAL_CONSUMERS.into(),
                    file: ig.file.clone(),
                    line: 0,
                    msg: format!(
                        "ignore entry for `{}` names `{}` which is not a declared consumer",
                        ig.variant, ig.file
                    ),
                });
            }
            if !declared.contains(ig.variant.as_str()) {
                out.push(Violation {
                    rule: RULE_JOURNAL_CONSUMERS.into(),
                    file: ig.file.clone(),
                    line: 0,
                    msg: format!(
                        "ignore entry names unknown `{}::{}` — the variant was renamed or \
                         removed; update the ignore-list",
                        jc.enum_name, ig.variant
                    ),
                });
            }
        }
        for consumer in &jc.consumers {
            let used = self.consumer_uses.get(consumer).cloned().unwrap_or_default();
            let ignored: BTreeSet<&str> = jc
                .ignore
                .iter()
                .filter(|ig| &ig.file == consumer)
                .map(|ig| ig.variant.as_str())
                .collect();
            for (variant, _) in variants {
                let is_used = used.contains(variant);
                let is_ignored = ignored.contains(variant.as_str());
                if !is_used && !is_ignored {
                    out.push(Violation {
                        rule: RULE_JOURNAL_CONSUMERS.into(),
                        file: consumer.clone(),
                        line: 0,
                        msg: format!(
                            "journal event `{}::{variant}` is not consumed by `{consumer}` and \
                             not on its ignore-list: every protocol event needs a referee — \
                             handle it or add a justified ignore entry",
                            jc.enum_name
                        ),
                    });
                } else if is_used && is_ignored {
                    out.push(Violation {
                        rule: RULE_JOURNAL_CONSUMERS.into(),
                        file: consumer.clone(),
                        line: 0,
                        msg: format!(
                            "stale ignore entry: `{consumer}` now consumes `{}::{variant}` — \
                             delete the ignore entry",
                            jc.enum_name
                        ),
                    });
                }
            }
        }
    }

    fn finish_chaos(&self, cp: &ChaosPointRule, out: &mut Vec<Violation>) {
        for (efile, ename) in &cp.enums {
            let Some(variants) = self.enums.get(ename) else {
                out.push(Violation {
                    rule: RULE_CHAOS_POINTS.into(),
                    file: efile.clone(),
                    line: 0,
                    msg: format!(
                        "enum `{ename}` not found in `{efile}` — fix the \
                         [rules.chaos-point-registry] config"
                    ),
                });
                continue;
            };
            let hooked = self.hook_uses.get(ename).cloned().unwrap_or_default();
            let file = self.enum_seen_in.get(ename).cloned().unwrap_or_else(|| efile.clone());
            for (variant, line) in variants {
                if !hooked.contains(variant) {
                    out.push(Violation {
                        rule: RULE_CHAOS_POINTS.into(),
                        file: file.clone(),
                        line: *line,
                        msg: format!(
                            "chaos point `{ename}::{variant}` has no hook site in any of [{}]: \
                             an armed point with no hook never fires, so the failover case it \
                             models is untested",
                            cp.hook_files.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// All `Enum::Variant` references in non-test code.
fn qualified_uses(toks: &[Tok], funcs: &[Func], ename: &str) -> BTreeSet<String> {
    let test_ranges: Vec<(u32, u32)> = funcs
        .iter()
        .filter(|f| f.is_test)
        .map(|f| (f.line, f.body.last().map_or(f.line, |t| t.line)))
        .collect();
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.ident() == Some(ename)
            && !in_test(t.line)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = toks.get(i + 3).and_then(Tok::ident) {
                // Skip associated fns (`EventKind::decode`): variants are
                // CamelCase, methods snake_case.
                if v.chars().next().is_some_and(char::is_uppercase) {
                    out.insert(v.to_string());
                }
            }
        }
    }
    out
}

/// Parse `enum <name> { .. }`'s variant list from a token stream.
fn enum_variants(toks: &[Tok], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].ident() == Some("enum") && toks[i + 1].ident() == Some(name) {
            // Skip generics to the opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_punct('{') {
                return None;
            }
            return Some(collect_variants(toks, j + 1));
        }
        i += 1;
    }
    None
}

fn collect_variants(toks: &[Tok], start: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut depth = 1usize;
    let mut expect = true; // at a position where a variant name may start
    let mut i = start;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        match () {
            _ if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') => {
                depth += 1;
                if depth == 2 && t.is_punct('[') {
                    // An attribute on the next variant: skip it wholesale so
                    // its idents are not taken for a variant name.
                    let mut d = 1;
                    i += 1;
                    while i < toks.len() && d > 0 {
                        if toks[i].is_punct('[') {
                            d += 1;
                        } else if toks[i].is_punct(']') {
                            d -= 1;
                        }
                        i += 1;
                    }
                    depth -= 1;
                    continue;
                }
            }
            _ if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') => {
                depth -= 1;
            }
            _ if t.is_punct(',') && depth == 1 => expect = true,
            _ if t.is_punct('#') => {}
            _ => {
                if depth == 1 && expect {
                    if let Some(id) = t.ident() {
                        out.push((id.to_string(), t.line));
                        expect = false;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::extract_funcs;

    fn wire_violations(src: &str) -> Vec<Violation> {
        let (toks, _) = lex(src);
        let funcs = extract_funcs(&toks);
        let mut out = Vec::new();
        check_wire_tags(&funcs, "wire.rs", &WireTagRule::default(), &mut out);
        out
    }

    #[test]
    fn symmetric_tags_pass() {
        let v = wire_violations(
            "impl Wire for Frame {\n\
             fn encode(&self, out: &mut Vec<u8>) { match self {\n\
               Frame::A => out.push(0), Frame::B { x } => { out.push(1); x.encode(out); } } }\n\
             fn decode(r: &mut R) -> Result<Self, E> { match u8::decode(r)? {\n\
               0 => Ok(Frame::A), 1 => Ok(Frame::B { x: u64::decode(r)? }),\n\
               _ => Err(E::Corrupt) } }\n\
             }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_decode_arm_is_flagged() {
        let v = wire_violations(
            "impl Wire for Frame {\n\
             fn encode(&self, out: &mut Vec<u8>) { match self {\n\
               Frame::A => out.push(0), Frame::B => out.push(1) } }\n\
             fn decode(r: &mut R) -> Result<Self, E> { match u8::decode(r)? {\n\
               0 => Ok(Frame::A), _ => Err(E::Corrupt) } }\n\
             }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("encoded but never decoded: 1"), "{}", v[0].msg);
    }

    #[test]
    fn duplicate_tag_is_flagged() {
        let v = wire_violations(
            "impl Wire for Frame {\n\
             fn encode(&self, out: &mut Vec<u8>) { match self {\n\
               Frame::A => out.push(1), Frame::B => out.push(1) } }\n\
             fn decode(r: &mut R) -> Result<Self, E> { match u8::decode(r)? {\n\
               1 => Ok(Frame::A), _ => Err(E::Corrupt) } }\n\
             }",
        );
        assert!(v.iter().any(|v| v.msg.contains("uses tag 1 twice")), "{v:?}");
    }

    #[test]
    fn tag_dot_encode_and_arm_value_idioms_are_read() {
        // The `let tag = match { .. => 2 }; tag.encode(..)` and
        // `2u8.encode(..)` styles both count as encode tags.
        let v = wire_violations(
            "impl Wire for K {\n\
             fn encode(&self, out: &mut Vec<u8>) {\n\
               match self { K::A => 0u8.encode(out), K::B => { 1u8.encode(out); } } }\n\
             fn decode(r: &mut R) -> Result<Self, E> { match u8::decode(r)? {\n\
               0 => Ok(K::A), 1 => Ok(K::B), _ => Err(E::Corrupt) } }\n\
             }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn enum_variants_and_uses() {
        let (toks, _) = lex("pub enum EventKind {\n\
               TxBegin { xact: XactId },\n\
               #[cfg(feature = \"x\")] Commit { tid: u64 },\n\
               Abort,\n\
             }\n\
             fn consume(k: EventKind) { match k { EventKind::TxBegin { .. } => {}, _ => {} } }\n\
             #[cfg(test)] mod tests { #[test] fn t() { let _ = EventKind::Abort; } }");
        let vars = enum_variants(&toks, "EventKind").unwrap();
        let names: Vec<&str> = vars.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["TxBegin", "Commit", "Abort"]);
        let funcs = extract_funcs(&toks);
        let uses = qualified_uses(&toks, &funcs, "EventKind");
        assert!(uses.contains("TxBegin"));
        assert!(!uses.contains("Abort"), "test-only uses do not count as consumption");
    }

    #[test]
    fn journal_consumer_finish_reports_missing_and_stale() {
        let rules = RegistryRules {
            journal_consumers: Some(JournalConsumerRule {
                enum_file: "journal.rs".into(),
                enum_name: "EventKind".into(),
                consumers: vec!["offline.rs".into()],
                ignore: vec![ConsumerIgnore {
                    file: "offline.rs".into(),
                    variant: "TxBegin".into(),
                    reason: "replays commit-path only".into(),
                }],
            }),
            ..Default::default()
        };
        let mut scan = Scan::default();
        let (jt, _) = lex("pub enum EventKind { TxBegin, Commit, Abort }");
        scan.scan_file("journal.rs", &jt, &extract_funcs(&jt), &rules);
        let (ct, _) = lex("fn f(k: EventKind) { match k { EventKind::Commit => {}, _ => {} } }");
        scan.scan_file("offline.rs", &ct, &extract_funcs(&ct), &rules);
        let mut out = Vec::new();
        scan.finish(&rules, &mut out);
        // `Abort` unconsumed and unignored; `TxBegin` ignored (ok);
        // `Commit` consumed (ok).
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("EventKind::Abort"), "{}", out[0].msg);

        // Consuming an ignored variant makes the ignore entry stale.
        let mut scan2 = Scan::default();
        scan2.scan_file("journal.rs", &jt, &extract_funcs(&jt), &rules);
        let (ct2, _) = lex("fn f(k: EventKind) { match k {\n\
               EventKind::Commit => {}, EventKind::TxBegin => {}, EventKind::Abort => {} } }");
        scan2.scan_file("offline.rs", &ct2, &extract_funcs(&ct2), &rules);
        let mut out2 = Vec::new();
        scan2.finish(&rules, &mut out2);
        assert_eq!(out2.len(), 1, "{out2:?}");
        assert!(out2[0].msg.contains("stale ignore"), "{}", out2[0].msg);
    }

    #[test]
    fn chaos_point_finish_reports_unhooked_variant() {
        let rules = RegistryRules {
            chaos_points: Some(ChaosPointRule {
                enums: vec![("journal.rs".into(), "CrashPoint".into())],
                hook_files: vec!["node.rs".into()],
            }),
            ..Default::default()
        };
        let mut scan = Scan::default();
        let (jt, _) = lex("pub enum CrashPoint { BeforeMulticast, MidStateTransfer }");
        scan.scan_file("journal.rs", &jt, &extract_funcs(&jt), &rules);
        let (nt, _) =
            lex("fn f(&self) { if self.crash_point(CrashPoint::BeforeMulticast) { return; } }");
        scan.scan_file("node.rs", &nt, &extract_funcs(&nt), &rules);
        let mut out = Vec::new();
        scan.finish(&rules, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("CrashPoint::MidStateTransfer"), "{}", out[0].msg);
    }
}
