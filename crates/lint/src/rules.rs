//! The invariant rules and the guard-tracking walker they share.
//!
//! Every rule here is named after a bug this repo actually shipped (see
//! DESIGN.md §13 for the full war stories):
//!
//! - `multicast-under-lock` — PR 1's lost update: a writeset multicast
//!   outside the node state lock let the ws_list prune watermark overtake
//!   an in-flight certification.
//! - `journal-gauge-under-lock` — PR 3's gauge drift: a gauge increment
//!   after the send raced the receiver's decrement; journal events written
//!   outside the lock interleave out of protocol order.
//! - `no-ambient-nondeterminism` — PR 4's determinism pillar: the fault
//!   schedule must be a pure function of `(seed, msg, member)`; one
//!   `Instant::now` or `HashMap` iteration silently regresses seed replay.
//! - `no-unwrap-on-protocol-paths` — commit/apply/recovery code must route
//!   failures through `DbError`, not panic a replica thread.
//! - `lock-ordering` — a declared partial order over the workspace's
//!   locks, checked at every statically visible nested-acquire site.
//!
//! The walker is intra-procedural and token-based: it tracks lock guards
//! created by `let g = <path>.lock()` bindings (released at scope end or
//! `drop(g)`), statement-lived "momentary" guards from un-bound lock
//! calls, and two forms of ambient evidence — a parameter of a lock-held
//! type (e.g. `&NodeState` proves the node lock is held) and methods of
//! types whose `&mut self` is only reachable under a lock (e.g.
//! `FaultState` behind the group lock). Calls into functions that acquire
//! locks internally are modelled by per-class `acquire-fns` patterns.

use crate::scopes::Func;
use std::collections::{BTreeMap, BTreeSet};

pub const RULE_MULTICAST: &str = "multicast-under-lock";
pub const RULE_JOURNAL_GAUGE: &str = "journal-gauge-under-lock";
pub const RULE_NONDET: &str = "no-ambient-nondeterminism";
pub const RULE_NO_UNWRAP: &str = "no-unwrap-on-protocol-paths";
pub const RULE_LOCK_ORDER: &str = "lock-ordering";
/// Pseudo-rule for broken suppression directives (malformed syntax or a
/// missing justification). Not suppressible, by design.
pub const RULE_DIRECTIVE: &str = "lint-directive";

pub const ALL_RULES: [&str; 5] =
    [RULE_MULTICAST, RULE_JOURNAL_GAUGE, RULE_NONDET, RULE_NO_UNWRAP, RULE_LOCK_ORDER];

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

/// A lock class: how acquisitions of one logical lock appear in source.
#[derive(Debug, Clone, Default)]
pub struct LockClass {
    pub name: String,
    /// Dotted path suffixes whose call yields a guard (`state.lock`,
    /// `nodes.read`). Scoped to `files` so the same field name can mean
    /// different locks in different crates.
    pub lock_exprs: Vec<String>,
    pub files: Vec<String>,
    /// Call-path suffixes that acquire this lock internally, from any
    /// file (`multicast_total`, `journal.record`, `auditor.on_*`).
    pub acquire_fns: Vec<String>,
    /// A parameter of this type proves the lock is held (`&NodeState`).
    pub param_types: Vec<String>,
    /// Methods of these types run with the lock held (`&mut self` only
    /// reachable under it).
    pub held_in_impls: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct CallUnderLockRule {
    pub files: Vec<String>,
    pub calls: Vec<String>,
    pub requires: String,
}

#[derive(Debug, Clone, Default)]
pub struct JournalGaugeRule {
    pub files: Vec<String>,
    pub calls: Vec<String>,
    /// Path segments that identify a gauge owner (`gauges`, `injected`).
    pub gauge_owners: Vec<String>,
    pub gauge_methods: Vec<String>,
    pub requires: String,
}

#[derive(Debug, Clone, Default)]
pub struct NondetRule {
    pub files: Vec<String>,
    /// `::`-separated paths (`Instant::now`) or bare idents (`HashMap`).
    pub banned: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct NoUnwrapRule {
    pub files: Vec<String>,
    pub methods: Vec<String>,
    pub macros: Vec<String>,
    pub ban_indexing: bool,
}

#[derive(Debug, Clone, Default)]
pub struct LockOrderRule {
    pub files: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct CheckerConfig {
    pub classes: Vec<LockClass>,
    /// `(outer, inner)`: holding `outer` while acquiring `inner` is legal.
    pub order_edges: Vec<(String, String)>,
    pub multicast: Option<CallUnderLockRule>,
    /// One entry per scope: different files can require different locks
    /// (node events under node-state, fault events under gcs-group).
    pub journal_gauge: Vec<JournalGaugeRule>,
    pub nondet: Option<NondetRule>,
    pub no_unwrap: Option<NoUnwrapRule>,
    pub lock_order: Option<LockOrderRule>,
}

impl CheckerConfig {
    /// Transitive closure of the declared order; errors on a cycle.
    pub fn order_closure(&self) -> Result<BTreeSet<(String, String)>, String> {
        let mut closure: BTreeSet<(String, String)> = self.order_edges.iter().cloned().collect();
        loop {
            let mut added = false;
            let snapshot: Vec<_> = closure.iter().cloned().collect();
            for (a, b) in &snapshot {
                for (c, d) in &snapshot {
                    if b == c && !closure.contains(&(a.clone(), d.clone())) {
                        closure.insert((a.clone(), d.clone()));
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        for (a, b) in &closure {
            if a == b {
                return Err(format!("lock-order cycle through `{a}`"));
            }
        }
        Ok(closure)
    }
}

// ---------------------------------------------------------------------
// Walker
// ---------------------------------------------------------------------

/// What the walker saw at one point in a function body.
#[derive(Debug)]
pub enum Event {
    /// A lock acquisition (guard-producing lock expr or an acquire-fn
    /// call), with the classes already held at that moment.
    Acquire { class: String, line: u32, held_before: Vec<String> },
    /// A dotted call `a.b.c(`, with held classes at the call.
    Call { path: Vec<String>, line: u32, held: Vec<String> },
    /// A macro invocation `name!(...)`.
    Macro { name: String, line: u32 },
    /// An index expression `expr[...]`.
    Index { line: u32 },
}

#[derive(Debug)]
struct Guard {
    class: String,
    /// Binding name for `drop(name)` release; `None` for momentary guards.
    name: Option<String>,
    depth: i32,
    momentary: bool,
    /// A `drop(name)` *deeper* than the creation depth is conditional
    /// (the `if … { drop(st); return; }` cleanup pattern): the guard is
    /// dead inside that block but live again on the fall-through path, so
    /// it is marked rather than removed and revived when the block exits.
    dropped_at: Option<i32>,
}

/// Does `path` end with dotted-pattern `pat`? A trailing `*` on the final
/// pattern segment makes it a prefix match (`auditor.on_*`).
fn suffix_matches(path: &[String], pat: &str) -> bool {
    let segs: Vec<&str> = pat.split('.').collect();
    if segs.len() > path.len() {
        return false;
    }
    let tail = &path[path.len() - segs.len()..];
    for (got, want) in tail.iter().zip(segs.iter()) {
        if let Some(prefix) = want.strip_suffix('*') {
            if !got.starts_with(prefix) {
                return false;
            }
        } else if got != want {
            return false;
        }
    }
    true
}

/// File-suffix match with `/` normalization.
pub fn file_matches(file: &str, pat: &str) -> bool {
    file.ends_with(pat)
}

pub fn file_in_scope(file: &str, files: &[String]) -> bool {
    files.iter().any(|p| file_matches(file, p))
}

/// Walk one function body, emitting [`Event`]s in token order.
pub fn walk_body(func: &Func, file: &str, cfg: &CheckerConfig, mut emit: impl FnMut(Event)) {
    // Ambient evidence: parameter types and impl context.
    let mut ambient: Vec<String> = Vec::new();
    for class in &cfg.classes {
        let by_param = class.param_types.iter().any(|ty| func.sig_mentions_type(ty));
        let by_impl =
            func.impl_type.as_deref().is_some_and(|t| class.held_in_impls.iter().any(|i| i == t));
        if by_param || by_impl {
            ambient.push(class.name.clone());
        }
    }

    let toks = &func.body;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    // Innermost pending `let NAME =` binding per depth.
    let mut pending_let: BTreeMap<i32, String> = BTreeMap::new();

    let held = |guards: &Vec<Guard>, ambient: &Vec<String>| -> Vec<String> {
        let mut h: Vec<String> = ambient.clone();
        for g in guards {
            if g.dropped_at.is_none() && !h.contains(&g.class) {
                h.push(g.class.clone());
            }
        }
        h
    };

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            crate::lexer::TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            crate::lexer::TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                for g in &mut guards {
                    // Leaving the block that conditionally dropped this
                    // guard: the fall-through path still holds it.
                    if g.dropped_at.is_some_and(|d| d > depth) {
                        g.dropped_at = None;
                    }
                }
                pending_let.retain(|&d, _| d <= depth);
                i += 1;
            }
            crate::lexer::TokKind::Punct(';') => {
                guards.retain(|g| !(g.momentary && g.depth >= depth));
                pending_let.remove(&depth);
                i += 1;
            }
            crate::lexer::TokKind::Punct('[') => {
                // Index expression iff the previous token can end an
                // expression (`x[`, `)(`..`)[`, `][`, literal`[`).
                let is_index = i > 0
                    && matches!(
                        &toks[i - 1].kind,
                        crate::lexer::TokKind::Ident(_)
                            | crate::lexer::TokKind::Punct(')')
                            | crate::lexer::TokKind::Punct(']')
                            | crate::lexer::TokKind::Literal
                    )
                    // `keyword [` is never indexing.
                    && !matches!(toks[i - 1].ident(), Some("return" | "in" | "else" | "match"));
                if is_index {
                    emit(Event::Index { line: t.line });
                }
                i += 1;
            }
            crate::lexer::TokKind::Ident(id) if id == "let" => {
                // `let [mut] NAME =` (not `let Pat(..) =`, not let-else).
                let mut j = i + 1;
                if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
                    if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        pending_let.insert(depth, name.to_string());
                    }
                }
                i += 1;
            }
            crate::lexer::TokKind::Ident(id)
                if id == "drop" && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                    if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                        if let Some(pos) =
                            guards.iter().rposition(|g| g.name.as_deref() == Some(name))
                        {
                            if guards[pos].depth < depth {
                                guards[pos].dropped_at = Some(depth);
                            } else {
                                guards.remove(pos);
                            }
                        }
                    }
                }
                i += 1;
            }
            crate::lexer::TokKind::Ident(_) => {
                // Macro call?
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
                {
                    emit(Event::Macro {
                        name: t.ident().unwrap_or_default().to_string(),
                        line: t.line,
                    });
                    i += 1;
                    continue;
                }
                // Dotted/path call chain ending in `(`: collect it.
                if let Some((path, end)) = call_chain(toks, i) {
                    let line = toks[end - 1].line;
                    // Lock expression?
                    let mut acquired: Option<String> = None;
                    for class in &cfg.classes {
                        if !class.lock_exprs.is_empty() && !file_in_scope(file, &class.files) {
                            continue;
                        }
                        if class.lock_exprs.iter().any(|p| suffix_matches(&path, p)) {
                            acquired = Some(class.name.clone());
                            break;
                        }
                    }
                    if let Some(class) = acquired {
                        let held_before = held(&guards, &ambient);
                        emit(Event::Acquire { class: class.clone(), line, held_before });
                        // `let g = path.lock();` binds the guard — but only
                        // when the lock call is the whole initializer. In
                        // `let v = *path.lock().get(&k)?;` the binding is a
                        // value copied out and the guard is a temporary.
                        let terminal = matching_close(toks, end)
                            .is_some_and(|c| toks.get(c + 1).is_some_and(|t| t.is_punct(';')));
                        let name = if terminal { pending_let.get(&depth).cloned() } else { None };
                        guards.push(Guard {
                            momentary: name.is_none(),
                            name,
                            class,
                            depth,
                            dropped_at: None,
                        });
                        i = end + 1;
                        continue;
                    }
                    // Acquire-fn?
                    for class in &cfg.classes {
                        if class.acquire_fns.iter().any(|p| suffix_matches(&path, p)) {
                            emit(Event::Acquire {
                                class: class.name.clone(),
                                line,
                                held_before: held(&guards, &ambient),
                            });
                            break;
                        }
                    }
                    emit(Event::Call { path, line, held: held(&guards, &ambient) });
                    i = end + 1;
                    continue;
                }
                // Method call on a complex receiver (`foo().bar(`,
                // `xs[k].bar(`): the chain walk above can't cross `)`/`]`,
                // but the final method name is still checkable — this is
                // what catches `map.get(&k).expect(..)` for the no-unwrap
                // rule and `…read().clone()` staying momentary.
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    let path = vec!["#expr".to_string(), t.ident().unwrap_or_default().to_string()];
                    for class in &cfg.classes {
                        if class.acquire_fns.iter().any(|p| suffix_matches(&path, p)) {
                            emit(Event::Acquire {
                                class: class.name.clone(),
                                line: t.line,
                                held_before: held(&guards, &ambient),
                            });
                            break;
                        }
                    }
                    emit(Event::Call { path, line: t.line, held: held(&guards, &ambient) });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// If a call chain `a.b.c(` or `A::b(` *ends* at position `i` (i.e. `i`
/// is the first ident of the chain), return the segment path and the
/// index of the `(` token. Chains are consumed from their head so every
/// call is seen exactly once.
fn call_chain(toks: &[crate::lexer::Tok], i: usize) -> Option<(Vec<String>, usize)> {
    // Only start at a chain head: the previous token must not be `.`/`::`
    // (those are interior positions, already consumed by the head).
    if i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':')) {
        return None;
    }
    let mut path = vec![toks[i].ident()?.to_string()];
    let mut j = i + 1;
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            return Some((path, j));
        }
        // `.ident`
        if toks.get(j).is_some_and(|t| t.is_punct('.')) {
            if let Some(seg) = toks.get(j + 1).and_then(|t| t.ident()) {
                path.push(seg.to_string());
                j += 2;
                continue;
            }
            // `.0` tuple access or `.await`: treat literal as opaque seg.
            if toks.get(j + 1).is_some_and(|t| matches!(t.kind, crate::lexer::TokKind::Literal)) {
                path.push("#tuple".to_string());
                j += 2;
                continue;
            }
            return None;
        }
        // `::ident`
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(seg) = toks.get(j + 2).and_then(|t| t.ident()) {
                path.push(seg.to_string());
                j += 3;
                continue;
            }
            // `::<T>` turbofish: skip the generic list, keep scanning.
            if toks.get(j + 2).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 1;
                let mut k = j + 3;
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct('<') {
                        depth += 1;
                    } else if toks[k].is_punct('>') {
                        depth -= 1;
                    }
                    k += 1;
                }
                j = k;
                continue;
            }
            return None;
        }
        return None;
    }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// Run all configured rules over one function.
pub fn check_func(func: &Func, file: &str, cfg: &CheckerConfig, out: &mut Vec<Violation>) {
    if func.is_test {
        return;
    }
    let mc = cfg.multicast.as_ref().filter(|r| file_in_scope(file, &r.files));
    let jgs: Vec<&JournalGaugeRule> =
        cfg.journal_gauge.iter().filter(|r| file_in_scope(file, &r.files)).collect();
    let nu = cfg.no_unwrap.as_ref().filter(|r| file_in_scope(file, &r.files));
    let lo = cfg.lock_order.as_ref().filter(|r| file_in_scope(file, &r.files));
    if mc.is_none() && jgs.is_empty() && nu.is_none() && lo.is_none() {
        return;
    }
    let closure = cfg.order_closure().unwrap_or_default();
    walk_body(func, file, cfg, |ev| match ev {
        Event::Acquire { class, line, held_before } => {
            let Some(_lo) = lo else { return };
            for outer in &held_before {
                if *outer == class {
                    out.push(Violation {
                        rule: RULE_LOCK_ORDER.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "re-acquire of `{class}` while already held in `{}` (self-deadlock)",
                            func.name
                        ),
                    });
                } else if !closure.contains(&(outer.clone(), class.clone())) {
                    out.push(Violation {
                        rule: RULE_LOCK_ORDER.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "acquiring `{class}` while holding `{outer}` in `{}` is not in the \
                             declared lock order (add `{outer} < {class}` to lint.toml [lock-order] \
                             if intended)",
                            func.name
                        ),
                    });
                }
            }
        }
        Event::Call { path, line, held } => {
            if let Some(r) = mc {
                if r.calls.iter().any(|p| suffix_matches(&path, p)) && !held.contains(&r.requires) {
                    out.push(Violation {
                        rule: RULE_MULTICAST.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{}` called in `{}` without holding `{}`: cert capture order must \
                             equal total-order sequence order",
                            path.join("."),
                            func.name,
                            r.requires
                        ),
                    });
                }
            }
            for r in &jgs {
                let is_journal = r.calls.iter().any(|p| suffix_matches(&path, p));
                let is_gauge = path.len() >= 2
                    && r.gauge_methods.iter().any(|m| path.last() == Some(m))
                    && path[..path.len() - 1]
                        .iter()
                        .any(|seg| r.gauge_owners.iter().any(|o| o == seg));
                if (is_journal || is_gauge) && !held.contains(&r.requires) {
                    out.push(Violation {
                        rule: RULE_JOURNAL_GAUGE.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{}` in `{}` outside `{}`: events/gauges must be ordered by the \
                             lock that guards the state transition",
                            path.join("."),
                            func.name,
                            r.requires
                        ),
                    });
                }
            }
            if let Some(r) = nu {
                if path.len() >= 2 && r.methods.iter().any(|m| path.last() == Some(m)) {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`.{}()` on a protocol path (`{}`): route the failure through \
                             `DbError` instead of panicking a replica thread",
                            path.last().expect("len checked"),
                            func.name
                        ),
                    });
                }
            }
        }
        Event::Macro { name, line } => {
            if let Some(r) = nu {
                if r.macros.contains(&name) {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{name}!` on a protocol path (`{}`): route the failure through \
                             `DbError` instead of panicking a replica thread",
                            func.name
                        ),
                    });
                }
            }
        }
        Event::Index { line } => {
            if let Some(r) = nu {
                if r.ban_indexing {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "index expression on a protocol path (`{}`): use `.get(..)` and \
                             route the miss through `DbError`",
                            func.name
                        ),
                    });
                }
            }
        }
    });
}

/// The nondeterminism rule scans raw file tokens (bans apply to `use`
/// statements and type positions too), excluding test-fn line ranges.
pub fn check_nondet(
    toks: &[crate::lexer::Tok],
    funcs: &[Func],
    file: &str,
    cfg: &CheckerConfig,
    out: &mut Vec<Violation>,
) {
    let Some(r) = cfg.nondet.as_ref().filter(|r| file_in_scope(file, &r.files)) else {
        return;
    };
    let test_ranges: Vec<(u32, u32)> = funcs
        .iter()
        .filter(|f| f.is_test)
        .map(|f| (f.line, f.body.last().map_or(f.line, |t| t.line)))
        .collect();
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    for (idx, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        for ban in &r.banned {
            let hit = if let Some((head, tail)) = ban.split_once("::") {
                id == head
                    && toks.get(idx + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 3).and_then(|t| t.ident()) == Some(tail)
            } else {
                id == ban
            };
            if hit && !in_test(t.line) {
                out.push(Violation {
                    rule: RULE_NONDET.into(),
                    file: file.into(),
                    line: t.line,
                    msg: format!(
                        "`{ban}` in fault-schedule code: schedules must be pure functions of \
                         (seed, msg, member) — no wall clocks, ambient RNGs, or iteration-order-\
                         dependent containers"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::extract_funcs;

    fn cfg_node_state() -> CheckerConfig {
        CheckerConfig {
            classes: vec![
                LockClass {
                    name: "node-state".into(),
                    lock_exprs: vec!["state.lock".into()],
                    files: vec!["node.rs".into()],
                    ..Default::default()
                },
                LockClass {
                    name: "gcs-group".into(),
                    acquire_fns: vec!["multicast_total".into(), "multicast_fifo".into()],
                    ..Default::default()
                },
            ],
            order_edges: vec![("node-state".into(), "gcs-group".into())],
            multicast: Some(CallUnderLockRule {
                files: vec!["node.rs".into()],
                calls: vec!["multicast_total".into(), "multicast_fifo".into()],
                requires: "node-state".into(),
            }),
            lock_order: Some(LockOrderRule { files: vec!["node.rs".into()] }),
            ..Default::default()
        }
    }

    fn run(src: &str, cfg: &CheckerConfig) -> Vec<Violation> {
        let (toks, _) = lex(src);
        let funcs = extract_funcs(&toks);
        let mut out = Vec::new();
        for f in &funcs {
            check_func(f, "node.rs", cfg, &mut out);
        }
        out
    }

    #[test]
    fn multicast_under_named_guard_passes() {
        let v = run(
            "impl N { fn c(&self) { let mut st = self.state.lock(); \
             self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multicast_after_scope_end_fails() {
        let v = run(
            "impl N { fn c(&self) { { let st = self.state.lock(); } \
             self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_MULTICAST);
    }

    #[test]
    fn drop_releases_the_guard() {
        let v = run(
            "impl N { fn c(&self) { let st = self.state.lock(); drop(st); \
             self.gcs.multicast_fifo(m); } }",
            &cfg_node_state(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn momentary_guard_dies_at_statement_end() {
        let v = run(
            "impl N { fn c(&self) { self.state.lock().x = 1; \
             self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn undeclared_nested_acquire_is_flagged() {
        let mut cfg = cfg_node_state();
        cfg.order_edges.clear();
        let v = run(
            "impl N { fn c(&self) { let st = self.state.lock(); \
             self.gcs.multicast_total(m); } }",
            &cfg,
        );
        assert!(v.iter().any(|v| v.rule == RULE_LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn reacquire_is_flagged_as_self_deadlock() {
        let v = run(
            "impl N { fn c(&self) { let a = self.state.lock(); \
             let b = self.state.lock(); } }",
            &cfg_node_state(),
        );
        assert!(v.iter().any(|v| v.msg.contains("re-acquire")), "{v:?}");
    }

    #[test]
    fn order_cycle_is_a_config_error() {
        let cfg = CheckerConfig {
            order_edges: vec![("a".into(), "b".into()), ("b".into(), "a".into())],
            ..Default::default()
        };
        assert!(cfg.order_closure().is_err());
    }

    #[test]
    fn param_type_evidence_counts_as_held() {
        let mut cfg = cfg_node_state();
        cfg.classes[0].param_types = vec!["NodeState".into()];
        let v = run(
            "impl N { fn refresh(&self, st: &NodeState) { self.gcs.multicast_total(m); } }",
            &cfg,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conditional_drop_revives_on_fallthrough() {
        // `if … { drop(st); return; }` must not strip the guard from the
        // fall-through path (the commit_local abort-branch pattern).
        let v = run(
            "impl N { fn c(&self) { let mut st = self.state.lock(); \
             if bad { drop(st); return; } self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn value_binding_through_lock_is_momentary() {
        // `let v = *x.lock().get(&k)…;` binds the value, not the guard.
        let v = run(
            "impl N { fn c(&self) { let m = *self.state.lock().get(&k); \
             self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert_eq!(v.len(), 1, "guard must die at the `;`: {v:?}");
    }

    #[test]
    fn chained_expect_is_flagged() {
        let mut cfg = cfg_node_state();
        cfg.no_unwrap = Some(NoUnwrapRule {
            files: vec!["node.rs".into()],
            methods: vec!["unwrap".into(), "expect".into()],
            ..Default::default()
        });
        let v =
            run("impl N { fn c(&self) { let x = self.map.get(&k).expect(\"missing\"); } }", &cfg);
        assert!(v.iter().any(|v| v.rule == RULE_NO_UNWRAP && v.msg.contains("expect")), "{v:?}");
    }

    #[test]
    fn test_functions_are_skipped() {
        let v = run(
            "#[cfg(test)] mod tests { fn t() { self.gcs.multicast_total(m); } }",
            &cfg_node_state(),
        );
        assert!(v.is_empty());
    }
}
