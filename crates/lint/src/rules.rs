//! The invariant rules, evaluated over per-function control-flow graphs.
//!
//! Every rule here is named after a bug this repo actually shipped (see
//! DESIGN.md §13 and §18 for the full war stories):
//!
//! - `multicast-under-lock` — PR 1's lost update: a writeset multicast
//!   outside the node state lock let the ws_list prune watermark overtake
//!   an in-flight certification.
//! - `journal-gauge-under-lock` — PR 3's gauge drift: a gauge increment
//!   after the send raced the receiver's decrement; journal events written
//!   outside the lock interleave out of protocol order.
//! - `no-ambient-nondeterminism` — PR 4's determinism pillar: the fault
//!   schedule must be a pure function of `(seed, msg, member)`; one
//!   `Instant::now` or `HashMap` iteration silently regresses seed replay.
//! - `no-unwrap-on-protocol-paths` — commit/apply/recovery code must route
//!   failures through `DbError`, not panic a replica thread.
//! - `lock-ordering` — a declared partial order over the workspace's
//!   locks, checked at every statically visible nested-acquire site.
//! - `no-io-under-lock` — PR 7's telemetry discipline and PR 6's
//!   sequencer discipline: responses are materialized first, socket calls
//!   never run while a protocol guard is live (a slow peer would extend
//!   the critical section by a network round trip).
//! - `no-blocking-under-lock` — `Condvar` waits only with their declared
//!   paired mutex; channel `recv`, thread `join`, and `sleep` under any
//!   protocol guard stall every thread contending for it.
//! - `lock-coverage` — closed world: every `Mutex`/`RwLock`/`Condvar`
//!   declaration in the workspace must map to a `lint.toml` class, so
//!   lock-ordering is fail-closed instead of opt-in.
//!
//! Guard tracking is intra-procedural: [`crate::cfg`] builds basic blocks
//! from the token stream and [`crate::dataflow`] solves may/must guard
//! liveness. Rules that *require* a lock check the must-held set (a
//! single lock-free path is the bug); rules that *forbid* work under a
//! lock check the may-held set (one bad path is a real bad path).
//! Ambient evidence — a parameter of a lock-held type (`&NodeState`) or a
//! method of a type whose `&mut self` only exists under a lock — joins
//! both sets. Calls into functions that acquire locks internally are
//! modelled by per-class `acquire-fns` patterns.

use crate::scopes::Func;
use std::collections::BTreeSet;

pub const RULE_MULTICAST: &str = "multicast-under-lock";
pub const RULE_JOURNAL_GAUGE: &str = "journal-gauge-under-lock";
pub const RULE_NONDET: &str = "no-ambient-nondeterminism";
pub const RULE_NO_UNWRAP: &str = "no-unwrap-on-protocol-paths";
pub const RULE_LOCK_ORDER: &str = "lock-ordering";
pub const RULE_NO_IO: &str = "no-io-under-lock";
pub const RULE_NO_BLOCKING: &str = "no-blocking-under-lock";
pub const RULE_LOCK_COVERAGE: &str = "lock-coverage";
pub const RULE_WIRE_TAGS: &str = "wire-tag-registry";
pub const RULE_JOURNAL_CONSUMERS: &str = "journal-consumer-registry";
pub const RULE_CHAOS_POINTS: &str = "chaos-point-registry";
/// Pseudo-rule for broken suppression directives (malformed syntax or a
/// missing justification). Not suppressible, by design.
pub const RULE_DIRECTIVE: &str = "lint-directive";

pub const ALL_RULES: [&str; 11] = [
    RULE_MULTICAST,
    RULE_JOURNAL_GAUGE,
    RULE_NONDET,
    RULE_NO_UNWRAP,
    RULE_LOCK_ORDER,
    RULE_NO_IO,
    RULE_NO_BLOCKING,
    RULE_LOCK_COVERAGE,
    RULE_WIRE_TAGS,
    RULE_JOURNAL_CONSUMERS,
    RULE_CHAOS_POINTS,
];

#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

/// A lock class: how acquisitions of one logical lock appear in source.
#[derive(Debug, Clone, Default)]
pub struct LockClass {
    pub name: String,
    /// Dotted path suffixes whose call yields a guard (`state.lock`,
    /// `nodes.read`). Scoped to `files` so the same field name can mean
    /// different locks in different crates.
    pub lock_exprs: Vec<String>,
    pub files: Vec<String>,
    /// Call-path suffixes that acquire this lock internally, from any
    /// file (`multicast_total`, `journal.record`, `auditor.on_*`).
    pub acquire_fns: Vec<String>,
    /// A parameter of this type proves the lock is held (`&NodeState`).
    pub param_types: Vec<String>,
    /// Methods of these types run with the lock held (`&mut self` only
    /// reachable under it).
    pub held_in_impls: Vec<String>,
    /// Condvar field names paired with this lock (`cond`, `pause_cond`):
    /// waiting on them is legal exactly while holding this class and
    /// nothing else. Also counts for `lock-coverage`.
    pub condvars: Vec<String>,
    /// Extra declaration names covered by this class for `lock-coverage`
    /// (fields or type aliases with no guard-producing call of their own,
    /// e.g. a `type MemberRegistry = Arc<Mutex<..>>` alias).
    pub fields: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct CallUnderLockRule {
    pub files: Vec<String>,
    pub calls: Vec<String>,
    pub requires: String,
}

#[derive(Debug, Clone, Default)]
pub struct JournalGaugeRule {
    pub files: Vec<String>,
    pub calls: Vec<String>,
    /// Path segments that identify a gauge owner (`gauges`, `injected`).
    pub gauge_owners: Vec<String>,
    pub gauge_methods: Vec<String>,
    pub requires: String,
}

#[derive(Debug, Clone, Default)]
pub struct NondetRule {
    pub files: Vec<String>,
    /// `::`-separated paths (`Instant::now`) or bare idents (`HashMap`).
    pub banned: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct NoUnwrapRule {
    pub files: Vec<String>,
    pub methods: Vec<String>,
    pub macros: Vec<String>,
    pub ban_indexing: bool,
}

#[derive(Debug, Clone, Default)]
pub struct LockOrderRule {
    pub files: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct NoIoRule {
    pub files: Vec<String>,
    /// Call-name suffixes that hit the network or disk (`write_all`,
    /// `read_exact`, `flush`, `accept`, `connect`, `shutdown`, plus this
    /// repo's framing helpers).
    pub calls: Vec<String>,
    /// Classes under which the listed calls are legal — the per-connection
    /// write lock exists precisely to serialize frame writes.
    pub allow_under: Vec<String>,
}

#[derive(Debug, Clone, Default)]
pub struct NoBlockingRule {
    pub files: Vec<String>,
    /// Unconditionally blocking call names (`recv`, `recv_timeout`,
    /// `join`, `sleep`): a violation under *any* declared guard.
    pub calls: Vec<String>,
    /// Condvar wait method names (`wait`, `wait_for`, `wait_while`,
    /// `wait_timeout`): legal only when the receiver is a declared
    /// condvar and nothing but its paired class is held.
    pub condvar_waits: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct LockCoverageRule {
    /// Type names whose declarations must be classified.
    pub types: Vec<String>,
}

impl Default for LockCoverageRule {
    fn default() -> Self {
        LockCoverageRule { types: vec!["Mutex".into(), "RwLock".into(), "Condvar".into()] }
    }
}

#[derive(Debug, Clone, Default)]
pub struct CheckerConfig {
    pub classes: Vec<LockClass>,
    /// `(outer, inner)`: holding `outer` while acquiring `inner` is legal.
    pub order_edges: Vec<(String, String)>,
    pub multicast: Option<CallUnderLockRule>,
    /// One entry per scope: different files can require different locks
    /// (node events under node-state, fault events under gcs-group).
    pub journal_gauge: Vec<JournalGaugeRule>,
    pub nondet: Option<NondetRule>,
    pub no_unwrap: Option<NoUnwrapRule>,
    pub lock_order: Option<LockOrderRule>,
    pub no_io: Option<NoIoRule>,
    pub no_blocking: Option<NoBlockingRule>,
    pub lock_coverage: Option<LockCoverageRule>,
}

impl CheckerConfig {
    /// Transitive closure of the declared order; errors on a cycle.
    pub fn order_closure(&self) -> Result<BTreeSet<(String, String)>, String> {
        let mut closure: BTreeSet<(String, String)> = self.order_edges.iter().cloned().collect();
        loop {
            let mut added = false;
            let snapshot: Vec<_> = closure.iter().cloned().collect();
            for (a, b) in &snapshot {
                for (c, d) in &snapshot {
                    if b == c && !closure.contains(&(a.clone(), d.clone())) {
                        closure.insert((a.clone(), d.clone()));
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        for (a, b) in &closure {
            if a == b {
                return Err(format!("lock-order cycle through `{a}`"));
            }
        }
        Ok(closure)
    }
}

/// Does `path` end with dotted-pattern `pat`? A trailing `*` on the final
/// pattern segment makes it a prefix match (`auditor.on_*`).
pub fn suffix_matches(path: &[String], pat: &str) -> bool {
    let segs: Vec<&str> = pat.split('.').collect();
    if segs.len() > path.len() {
        return false;
    }
    let tail = &path[path.len() - segs.len()..];
    for (got, want) in tail.iter().zip(segs.iter()) {
        if let Some(prefix) = want.strip_suffix('*') {
            if !got.starts_with(prefix) {
                return false;
            }
        } else if got != want {
            return false;
        }
    }
    true
}

/// File-suffix match with `/` normalization.
pub fn file_matches(file: &str, pat: &str) -> bool {
    file.ends_with(pat)
}

pub fn file_in_scope(file: &str, files: &[String]) -> bool {
    files.iter().any(|p| file_matches(file, p))
}

/// Ambient lock-class evidence for one function: parameter types and
/// impl context.
pub fn ambient_classes(func: &Func, cfg: &CheckerConfig) -> BTreeSet<String> {
    let mut ambient = BTreeSet::new();
    for class in &cfg.classes {
        let by_param = class.param_types.iter().any(|ty| func.sig_mentions_type(ty));
        let by_impl =
            func.impl_type.as_deref().is_some_and(|t| class.held_in_impls.iter().any(|i| i == t));
        if by_param || by_impl {
            ambient.insert(class.name.clone());
        }
    }
    ambient
}

// ---------------------------------------------------------------------
// Per-function rules over CFG events
// ---------------------------------------------------------------------

/// Run all configured per-function rules over one function.
pub fn check_func(func: &Func, file: &str, cfg: &CheckerConfig, out: &mut Vec<Violation>) {
    if func.is_test {
        return;
    }
    let mc = cfg.multicast.as_ref().filter(|r| file_in_scope(file, &r.files));
    let jgs: Vec<&JournalGaugeRule> =
        cfg.journal_gauge.iter().filter(|r| file_in_scope(file, &r.files)).collect();
    let nu = cfg.no_unwrap.as_ref().filter(|r| file_in_scope(file, &r.files));
    let lo = cfg.lock_order.as_ref().filter(|r| file_in_scope(file, &r.files));
    let io = cfg.no_io.as_ref().filter(|r| file_in_scope(file, &r.files));
    let blk = cfg.no_blocking.as_ref().filter(|r| file_in_scope(file, &r.files));
    if mc.is_none()
        && jgs.is_empty()
        && nu.is_none()
        && lo.is_none()
        && io.is_none()
        && blk.is_none()
    {
        return;
    }
    let closure = cfg.order_closure().unwrap_or_default();
    let ambient = ambient_classes(func, cfg);
    let ctx = crate::cfg::GuardCtx { classes: &cfg.classes, file };
    let graph = crate::cfg::build(&func.body, &ctx);
    let flow = crate::dataflow::solve(&graph);
    crate::dataflow::events(&graph, &flow, &ambient, |ev| match ev {
        crate::dataflow::Event::Acquire { class, line, held_may, .. } => {
            let Some(_lo) = lo else { return };
            for outer in &held_may {
                if *outer == class {
                    out.push(Violation {
                        rule: RULE_LOCK_ORDER.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "re-acquire of `{class}` on a path where it is already held in `{}` \
                             (self-deadlock)",
                            func.name
                        ),
                    });
                } else if !closure.contains(&(outer.clone(), class.clone())) {
                    out.push(Violation {
                        rule: RULE_LOCK_ORDER.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "acquiring `{class}` while holding `{outer}` in `{}` is not in the \
                             declared lock order (add `{outer} < {class}` to lint.toml [lock-order] \
                             if intended)",
                            func.name
                        ),
                    });
                }
            }
        }
        crate::dataflow::Event::Call { path, line, held_may, held_must } => {
            if let Some(r) = mc {
                if r.calls.iter().any(|p| suffix_matches(&path, p))
                    && !held_must.contains(&r.requires)
                {
                    out.push(Violation {
                        rule: RULE_MULTICAST.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{}` called in `{}` on a path not holding `{}`: cert capture order \
                             must equal total-order sequence order",
                            path.join("."),
                            func.name,
                            r.requires
                        ),
                    });
                }
            }
            for r in &jgs {
                let is_journal = r.calls.iter().any(|p| suffix_matches(&path, p));
                let is_gauge = path.len() >= 2
                    && r.gauge_methods.iter().any(|m| path.last() == Some(m))
                    && path[..path.len() - 1]
                        .iter()
                        .any(|seg| r.gauge_owners.iter().any(|o| o == seg));
                if (is_journal || is_gauge) && !held_must.contains(&r.requires) {
                    out.push(Violation {
                        rule: RULE_JOURNAL_GAUGE.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{}` in `{}` on a path not holding `{}`: events/gauges must be \
                             ordered by the lock that guards the state transition",
                            path.join("."),
                            func.name,
                            r.requires
                        ),
                    });
                }
            }
            if let Some(r) = nu {
                if path.len() >= 2 && r.methods.iter().any(|m| path.last() == Some(m)) {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`.{}()` on a protocol path (`{}`): route the failure through \
                             `DbError` instead of panicking a replica thread",
                            path.last().expect("len checked"),
                            func.name
                        ),
                    });
                }
            }
            if let Some(r) = io {
                if r.calls.iter().any(|p| suffix_matches(&path, p)) {
                    let bad: Vec<&String> =
                        held_may.iter().filter(|c| !r.allow_under.contains(c)).collect();
                    if !bad.is_empty() {
                        out.push(Violation {
                            rule: RULE_NO_IO.into(),
                            file: file.into(),
                            line,
                            msg: format!(
                                "`{}` in `{}` on a path holding {}: socket/file calls must not \
                                 run under a protocol lock — materialize first, send after release",
                                path.join("."),
                                func.name,
                                fmt_classes(&bad)
                            ),
                        });
                    }
                }
            }
            if let Some(r) = blk {
                check_blocking(r, cfg, file, &func.name, &path, line, &held_may, out);
            }
        }
        crate::dataflow::Event::Macro { name, line } => {
            if let Some(r) = nu {
                if r.macros.contains(&name) {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{name}!` on a protocol path (`{}`): route the failure through \
                             `DbError` instead of panicking a replica thread",
                            func.name
                        ),
                    });
                }
            }
        }
        crate::dataflow::Event::Index { line } => {
            if let Some(r) = nu {
                if r.ban_indexing {
                    out.push(Violation {
                        rule: RULE_NO_UNWRAP.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "index expression on a protocol path (`{}`): use `.get(..)` and \
                             route the miss through `DbError`",
                            func.name
                        ),
                    });
                }
            }
        }
    });
}

fn fmt_classes(classes: &[&String]) -> String {
    classes.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(", ")
}

/// The `no-blocking-under-lock` check for one call event.
#[allow(clippy::too_many_arguments)]
fn check_blocking(
    r: &NoBlockingRule,
    cfg: &CheckerConfig,
    file: &str,
    func_name: &str,
    path: &[String],
    line: u32,
    held_may: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    if held_may.is_empty() {
        return;
    }
    let Some(last) = path.last() else { return };
    if r.condvar_waits.iter().any(|w| w == last) {
        // A condvar wait: find the declared pairing from the receiver
        // field name (`self.pause_cond.wait_for(..)` -> `pause_cond`).
        let receiver = if path.len() >= 2 { Some(&path[path.len() - 2]) } else { None };
        let paired = receiver.and_then(|recv| {
            cfg.classes
                .iter()
                .find(|c| {
                    file_in_scope(file, &c.files) && c.condvars.iter().any(|cv| cv == recv.as_str())
                })
                .map(|c| c.name.clone())
        });
        match paired {
            Some(class) => {
                let others: Vec<&String> = held_may.iter().filter(|c| **c != class).collect();
                if !others.is_empty() {
                    out.push(Violation {
                        rule: RULE_NO_BLOCKING.into(),
                        file: file.into(),
                        line,
                        msg: format!(
                            "`{}` in `{}` waits on the condvar paired with `{class}` while also \
                             holding {}: a parked thread must hold nothing but the wait mutex",
                            path.join("."),
                            func_name,
                            fmt_classes(&others)
                        ),
                    });
                }
            }
            None => {
                out.push(Violation {
                    rule: RULE_NO_BLOCKING.into(),
                    file: file.into(),
                    line,
                    msg: format!(
                        "`{}` in `{}` waits on a condvar with no declared lock pairing while \
                         holding {}: declare it via `condvars` on the paired [[lock-class]]",
                        path.join("."),
                        func_name,
                        fmt_classes(&held_may.iter().collect::<Vec<_>>())
                    ),
                });
            }
        }
        return;
    }
    if r.calls.iter().any(|p| suffix_matches(path, p)) {
        out.push(Violation {
            rule: RULE_NO_BLOCKING.into(),
            file: file.into(),
            line,
            msg: format!(
                "`{}` in `{}` blocks on a path holding {}: channel receives, thread joins, and \
                 sleeps must happen outside every protocol lock",
                path.join("."),
                func_name,
                fmt_classes(&held_may.iter().collect::<Vec<_>>())
            ),
        });
    }
}

// ---------------------------------------------------------------------
// Token-level rules (whole-file scans)
// ---------------------------------------------------------------------

/// The nondeterminism rule scans raw file tokens (bans apply to `use`
/// statements and type positions too), excluding test-fn line ranges.
pub fn check_nondet(
    toks: &[crate::lexer::Tok],
    funcs: &[Func],
    file: &str,
    cfg: &CheckerConfig,
    out: &mut Vec<Violation>,
) {
    let Some(r) = cfg.nondet.as_ref().filter(|r| file_in_scope(file, &r.files)) else {
        return;
    };
    let in_test = test_line_checker(funcs);
    for (idx, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        for ban in &r.banned {
            let hit = if let Some((head, tail)) = ban.split_once("::") {
                id == head
                    && toks.get(idx + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 3).and_then(|t| t.ident()) == Some(tail)
            } else {
                id == ban
            };
            if hit && !in_test(t.line) {
                out.push(Violation {
                    rule: RULE_NONDET.into(),
                    file: file.into(),
                    line: t.line,
                    msg: format!(
                        "`{ban}` in fault-schedule code: schedules must be pure functions of \
                         (seed, msg, member) — no wall clocks, ambient RNGs, or iteration-order-\
                         dependent containers"
                    ),
                });
            }
        }
    }
}

fn test_line_checker(funcs: &[Func]) -> impl Fn(u32) -> bool {
    let test_ranges: Vec<(u32, u32)> = funcs
        .iter()
        .filter(|f| f.is_test)
        .map(|f| (f.line, f.body.last().map_or(f.line, |t| t.line)))
        .collect();
    move |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// `lock-coverage`: every `Mutex`/`RwLock`/`Condvar` declaration in the
/// workspace must resolve to a lint.toml lock class. Declarations are
/// type positions (`name: Mutex<..>`, `cond: Condvar`, `type X =
/// Arc<Mutex<..>>`); expression uses (`Mutex::new`), borrows (`&Mutex<T>`
/// parameters) and `use` imports are not declarations.
pub fn check_lock_coverage(
    toks: &[crate::lexer::Tok],
    funcs: &[Func],
    file: &str,
    cfg: &CheckerConfig,
    out: &mut Vec<Violation>,
) {
    let Some(r) = &cfg.lock_coverage else { return };
    let in_test = test_line_checker(funcs);
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for (idx, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !r.types.iter().any(|ty| ty == id) || in_test(t.line) {
            continue;
        }
        let next = toks.get(idx + 1);
        let is_type_position = if id == "Condvar" {
            // Bare type: not `Condvar::new(..)` / `Condvar.new` and not a
            // `use ..::{Condvar, ..}` import (previous token `:` or `{`
            // only counts when the token before the name resolves below).
            !next.is_some_and(|t| t.is_punct(':') || t.is_punct('.'))
        } else {
            // Generic type: `Mutex<..>`. `Mutex::new` has `:` next.
            next.is_some_and(|t| t.is_punct('<'))
        };
        if !is_type_position {
            continue;
        }
        let Some(name) = decl_name(toks, idx) else { continue };
        if !seen.insert((name.clone(), t.line)) {
            continue;
        }
        let classified = cfg.classes.iter().any(|c| {
            if !file_in_scope(file, &c.files) {
                return false;
            }
            c.fields.iter().any(|f| f == &name)
                || c.condvars.iter().any(|cv| cv == &name)
                || c.lock_exprs.iter().any(|e| e.split('.').next() == Some(name.as_str()))
        });
        if !classified {
            out.push(Violation {
                rule: RULE_LOCK_COVERAGE.into(),
                file: file.into(),
                line: t.line,
                msg: format!(
                    "`{name}: {id}<..>` is not mapped to any lint.toml lock class: add it to a \
                     [[lock-class]] (via lock-exprs, condvars, or fields) so the ordering and \
                     blocking rules see it — unclassified locks are invisible to every guard rule"
                ),
            });
        }
    }
}

/// Resolve the declared name for a lock type found at `idx`: walk left
/// over generic-wrapper noise (`Arc<`, `Box<`, qualifying path segments)
/// to `name :` or `type Name =`. `None` when the site is not a
/// declaration (borrows, imports, nested generic arguments).
fn decl_name(toks: &[crate::lexer::Tok], idx: usize) -> Option<String> {
    const WRAPPERS: [&str; 5] = ["Arc", "Rc", "Box", "std", "sync"];
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct('<') || t.ident().is_some_and(|s| WRAPPERS.contains(&s) || s == "parking_lot")
        {
            continue;
        }
        if t.is_punct(':') {
            // `name : ...` (single colon) vs `path :: Type` (double).
            if k > 0 && toks[k - 1].is_punct(':') {
                // `::` path qualifier: keep walking left past it.
                k -= 1;
                continue;
            }
            let name = toks.get(k.checked_sub(1)?)?.ident()?;
            // A use-import `use a::{Condvar, ..}` never has `ident :`
            // before the type, so reaching here means a real binding.
            return Some(name.to_string());
        }
        if t.is_punct('=') {
            // `type Name = Arc<Mutex<..>>` alias declaration.
            let name_tok = toks.get(k.checked_sub(1)?)?;
            let name = name_tok.ident()?;
            let kw = toks.get(k.checked_sub(2)?)?.ident()?;
            return (kw == "type").then(|| name.to_string());
        }
        // Anything else (`&`, `(`, `,`, an unrelated ident): a usage or a
        // nested generic argument, not a declaration.
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scopes::extract_funcs;

    /// Mini config mirroring the real lint.toml's shape: a guard-producing
    /// state lock, an acquire-fn class (the multicast), a condvar-paired
    /// apply lock, and an allow-under class for frame writes.
    fn test_cfg() -> CheckerConfig {
        let class = |name: &str| LockClass { name: name.into(), ..Default::default() };
        CheckerConfig {
            classes: vec![
                LockClass {
                    lock_exprs: vec!["state.lock".into()],
                    files: vec!["node.rs".into()],
                    param_types: vec!["NodeState".into()],
                    held_in_impls: vec!["StateOps".into()],
                    ..class("node-state")
                },
                LockClass { acquire_fns: vec!["multicast_total".into()], ..class("gcs-group") },
                LockClass {
                    lock_exprs: vec!["apply.lock".into()],
                    files: vec!["node.rs".into()],
                    condvars: vec!["apply_cond".into()],
                    ..class("node-apply")
                },
                LockClass {
                    lock_exprs: vec!["wl.lock".into()],
                    files: vec!["node.rs".into()],
                    ..class("tcp-write")
                },
            ],
            order_edges: vec![
                ("node-state".into(), "gcs-group".into()),
                ("node-state".into(), "node-apply".into()),
            ],
            multicast: Some(CallUnderLockRule {
                files: vec!["node.rs".into()],
                calls: vec!["multicast_total".into()],
                requires: "node-state".into(),
            }),
            lock_order: Some(LockOrderRule { files: vec!["node.rs".into()] }),
            no_io: Some(NoIoRule {
                files: vec!["node.rs".into()],
                calls: vec!["write_all".into(), "flush".into()],
                allow_under: vec!["tcp-write".into()],
            }),
            no_blocking: Some(NoBlockingRule {
                files: vec!["node.rs".into()],
                calls: vec!["recv".into(), "join".into(), "sleep".into()],
                condvar_waits: vec!["wait".into(), "wait_for".into()],
            }),
            no_unwrap: Some(NoUnwrapRule {
                files: vec!["node.rs".into()],
                methods: vec!["unwrap".into(), "expect".into()],
                macros: vec!["unimplemented".into()],
                ban_indexing: true,
            }),
            ..Default::default()
        }
    }

    fn lint(src: &str, rule: &str) -> Vec<Violation> {
        let cfg = test_cfg();
        let (toks, _) = lex(src);
        let funcs = extract_funcs(&toks);
        let mut out = Vec::new();
        for f in &funcs {
            check_func(f, "node.rs", &cfg, &mut out);
        }
        out.into_iter().filter(|v| v.rule == rule).collect()
    }

    // ----- ported linear-walker behaviors -----

    #[test]
    fn multicast_under_guard_passes() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multicast_after_scope_end_fails() {
        let v = lint(
            "impl N { fn f(&self) { { let st = self.state.lock(); } \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); drop(st); \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn momentary_guard_dies_at_statement_end() {
        let v = lint(
            "impl N { fn f(&self) { self.state.lock().insert(k, v); \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn value_binding_through_momentary_lock() {
        // `let v = self.state.lock().get(k);` binds the value, not the
        // guard — the guard dies at the `;`.
        let v = lint(
            "impl N { fn f(&self) { let v = self.state.lock().get(k); \
             self.gcs.multicast_total(v); } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn reacquire_is_a_self_deadlock() {
        let v = lint(
            "impl N { fn f(&self) { let a = self.state.lock(); \
             let b = self.state.lock(); } }",
            RULE_LOCK_ORDER,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("re-acquire"), "{}", v[0].msg);
    }

    #[test]
    fn undeclared_nesting_violates_the_order() {
        // apply -> state has no declared edge (only state -> apply).
        let v = lint(
            "impl N { fn f(&self) { let a = self.apply.lock(); \
             let s = self.state.lock(); } }",
            RULE_LOCK_ORDER,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn declared_nesting_passes() {
        let v = lint(
            "impl N { fn f(&self) { let s = self.state.lock(); \
             let a = self.apply.lock(); } }",
            RULE_LOCK_ORDER,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn param_type_is_ambient_evidence() {
        let v = lint(
            "fn helper(st: &mut NodeState, gcs: &G) { gcs.multicast_total(m); }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn held_in_impl_is_ambient_evidence() {
        let v = lint(
            "impl StateOps { fn f(&mut self) { self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn chained_expect_is_flagged() {
        let v = lint("fn f() { self.tbl.get(k).expect(\"missing\"); }", RULE_NO_UNWRAP);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn index_expression_is_flagged() {
        let v = lint("fn f() { let x = xs[i]; }", RULE_NO_UNWRAP);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn test_fns_are_skipped() {
        let v = lint("#[test] fn t() { self.gcs.multicast_total(m); xs[i]; }", RULE_MULTICAST);
        assert!(v.is_empty(), "{v:?}");
    }

    // ----- CFG-specific: branch/loop/early-return guard liveness -----

    #[test]
    fn conditional_drop_and_return_keeps_fallthrough_guarded() {
        // The linear walker's classic false positive: the diverging branch
        // drops the guard and returns, so the fall-through still must-hold
        // it — the branch contributes nothing to the join.
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             if bad { drop(st); return; } \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drop_in_one_arm_does_not_leak_into_siblings() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             match x { A => { drop(st); } B => { self.gcs.multicast_total(m); } } } }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn join_after_partial_drop_is_not_must_held() {
        // One arm dropped the guard, so after the match the lock is only
        // may-held — a multicast there is a real bug on the A path.
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             match x { A => { drop(st); } B => {} } \
             self.gcs.multicast_total(m); } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn per_branch_precision_in_if_else() {
        // Only the else branch multicasts without the lock.
        let v = lint(
            "impl N { fn f(&self) { \
             if a { let st = self.state.lock(); self.gcs.multicast_total(x); } \
             else { self.gcs.multicast_total(y); } } }",
            RULE_MULTICAST,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn try_divergence_keeps_fallthrough_guarded() {
        let v = lint(
            "impl N { fn f(&self) -> R { let st = self.state.lock(); \
             let v = self.prepare(k)?; \
             self.gcs.multicast_total(v); Ok(()) } }",
            RULE_MULTICAST,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn loop_iteration_scope_releases_each_round() {
        // The guard is taken and released inside each iteration: the back
        // edge carries no live guard, so this is not a re-acquire.
        let v = lint(
            "impl N { fn f(&self) { while going { \
             let st = self.state.lock(); st.step(); } } }",
            RULE_LOCK_ORDER,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guard_held_across_loop_body_is_a_reacquire() {
        let v = lint(
            "impl N { fn f(&self) { let outer = self.state.lock(); \
             while going { let inner = self.state.lock(); } } }",
            RULE_LOCK_ORDER,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("re-acquire"), "{}", v[0].msg);
    }

    // ----- no-io-under-lock -----

    #[test]
    fn io_under_protocol_lock_is_flagged() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             self.sock.write_all(buf); } }",
            RULE_NO_IO,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn io_after_release_passes() {
        let v = lint(
            "impl N { fn f(&self) { { let st = self.state.lock(); } \
             self.sock.write_all(buf); } }",
            RULE_NO_IO,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn io_under_allow_under_class_passes() {
        // The per-connection write lock exists to serialize frame writes.
        let v = lint(
            "impl N { fn f(&self) { let w = self.wl.lock(); \
             w.write_all(buf); } }",
            RULE_NO_IO,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn io_is_flagged_on_may_held_paths() {
        // One path dropped the guard, but the other still holds it at the
        // write: one bad path is a real bad path.
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             if a { drop(st); } \
             self.sock.write_all(buf); } }",
            RULE_NO_IO,
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    // ----- no-blocking-under-lock -----

    #[test]
    fn paired_condvar_wait_passes() {
        let v = lint(
            "impl N { fn f(&self) { let mut g = self.apply.lock(); \
             self.apply_cond.wait(g); } }",
            RULE_NO_BLOCKING,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn condvar_wait_holding_extra_lock_is_flagged() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             let mut g = self.apply.lock(); self.apply_cond.wait(g); } }",
            RULE_NO_BLOCKING,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("node-state"), "{}", v[0].msg);
    }

    #[test]
    fn unpaired_condvar_wait_under_lock_is_flagged() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             self.other_cond.wait_for(st, t); } }",
            RULE_NO_BLOCKING,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("no declared lock pairing"), "{}", v[0].msg);
    }

    #[test]
    fn recv_and_join_under_lock_are_flagged() {
        let v = lint(
            "impl N { fn f(&self) { let st = self.state.lock(); \
             let m = self.chan.recv(); } }",
            RULE_NO_BLOCKING,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        let v = lint("impl N { fn f(&self) { let m = self.chan.recv(); } }", RULE_NO_BLOCKING);
        assert!(v.is_empty(), "blocking calls outside any lock are fine: {v:?}");
    }

    // ----- lock-coverage -----

    fn coverage(src: &str) -> Vec<Violation> {
        let mut cfg = test_cfg();
        cfg.lock_coverage = Some(LockCoverageRule::default());
        let (toks, _) = lex(src);
        let funcs = extract_funcs(&toks);
        let mut out = Vec::new();
        check_lock_coverage(&toks, &funcs, "node.rs", &cfg, &mut out);
        out
    }

    #[test]
    fn unclassified_lock_declaration_is_flagged() {
        let v = coverage("struct S { state: Mutex<u64>, stray: Mutex<u64> }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("`stray: Mutex<..>`"), "{}", v[0].msg);
    }

    #[test]
    fn condvar_and_field_classification_cover_declarations() {
        let v =
            coverage("struct S { state: Arc<Mutex<u64>>, apply: Mutex<u64>, apply_cond: Condvar }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn uses_and_imports_are_not_declarations() {
        let v = coverage(
            "use parking_lot::{Condvar, Mutex};\n\
             fn f(m: &Mutex<u64>) { let g = Mutex::new(0); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn type_alias_declarations_are_covered() {
        let v = coverage("type Registry = Arc<Mutex<Vec<u64>>>;");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Registry"), "{}", v[0].msg);
    }

    #[test]
    fn test_code_lock_declarations_are_exempt() {
        let v = coverage(
            "#[cfg(test)] mod tests { fn h() { let scratch: Mutex<u64> = Mutex::new(0); } }",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
