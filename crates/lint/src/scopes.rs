//! Item extraction: carve a lexed file into functions with their body
//! token streams, remembering the enclosing `impl`/`mod` context and
//! whether the code is test-only (`#[cfg(test)]` module, `#[test]` fn).
//!
//! This is deliberately not a parser — it walks brace structure and a few
//! keywords. That is enough for the invariant rules, which only need (a)
//! per-function token streams, (b) the impl type a method belongs to, and
//! (c) a test/non-test classification.

use crate::lexer::{Tok, TokKind};

/// One extracted function.
#[derive(Debug)]
pub struct Func {
    pub name: String,
    /// Type name of the enclosing `impl` block, if any (`impl Foo` and
    /// `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// Trait name of the enclosing `impl Trait for Type` block
    /// (`impl Wire for Frame` records `Wire`; inherent impls record
    /// nothing). The registry pass uses this to find encode/decode pairs.
    pub impl_trait: Option<String>,
    /// Signature tokens, `fn` through the token before the body `{`.
    pub sig: Vec<Tok>,
    /// Body tokens, exclusive of the outer braces.
    pub body: Vec<Tok>,
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` / a `mod tests`-style region.
    pub is_test: bool,
}

impl Func {
    /// Does the signature declare a parameter (or return) of type `ty`?
    /// Token-level: any identifier in the signature equal to `ty`.
    pub fn sig_mentions_type(&self, ty: &str) -> bool {
        self.sig.iter().any(|t| t.ident() == Some(ty))
    }
}

/// Extract all functions from a token stream.
pub fn extract_funcs(toks: &[Tok]) -> Vec<Func> {
    let mut out = Vec::new();
    let mut i = 0;
    walk(toks, &mut i, None, None, false, &mut out);
    out
}

/// Recursive item-level walk. `i` points into `toks`; consumes until the
/// closing `}` of the current block (or end of input at top level).
fn walk(
    toks: &[Tok],
    i: &mut usize,
    impl_type: Option<&str>,
    impl_trait: Option<&str>,
    in_test: bool,
    out: &mut Vec<Func>,
) {
    // Attributes seen since the last item, flattened to ident lists.
    let mut pending_attrs: Vec<Vec<String>> = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        match &t.kind {
            TokKind::Punct('}') => {
                *i += 1;
                return;
            }
            TokKind::Punct('#') => {
                // `#[...]` or `#![...]`: collect the attribute's idents.
                *i += 1;
                if *i < toks.len() && toks[*i].is_punct('!') {
                    *i += 1;
                }
                if *i < toks.len() && toks[*i].is_punct('[') {
                    *i += 1;
                    let mut idents = Vec::new();
                    let mut depth = 1;
                    while *i < toks.len() && depth > 0 {
                        match &toks[*i].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => depth -= 1,
                            TokKind::Ident(s) => idents.push(s.clone()),
                            _ => {}
                        }
                        *i += 1;
                    }
                    pending_attrs.push(idents);
                }
            }
            TokKind::Ident(kw) if kw == "fn" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_test = in_test || attrs_mark_test(&attrs);
                let fn_line = t.line;
                *i += 1;
                let name = match toks.get(*i).and_then(|t| t.ident()) {
                    Some(n) => n.to_string(),
                    None => continue, // `fn` used as an ident (e.g. Fn traits lexed oddly)
                };
                // Signature runs to the body `{` at angle/paren depth 0; a
                // `;` first means a bodyless declaration.
                let sig_start = *i;
                let mut body = Vec::new();
                let mut found_body = false;
                let mut paren = 0i32;
                while *i < toks.len() {
                    match &toks[*i].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                        TokKind::Punct(';') if paren == 0 => {
                            *i += 1;
                            break;
                        }
                        TokKind::Punct('{') if paren == 0 => {
                            found_body = true;
                            break;
                        }
                        _ => {}
                    }
                    *i += 1;
                }
                if !found_body {
                    continue;
                }
                let sig: Vec<Tok> = toks[sig_start..*i].to_vec();
                *i += 1; // past `{`
                let mut depth = 1;
                while *i < toks.len() && depth > 0 {
                    match &toks[*i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    if depth > 0 {
                        body.push(toks[*i].clone());
                    }
                    *i += 1;
                }
                out.push(Func {
                    name,
                    impl_type: impl_type.map(String::from),
                    impl_trait: impl_trait.map(String::from),
                    sig,
                    body,
                    line: fn_line,
                    is_test,
                });
            }
            TokKind::Ident(kw) if kw == "impl" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_test = in_test || attrs_mark_test(&attrs);
                *i += 1;
                // Find the impl'd type: the last path identifier before the
                // opening `{` (handles `impl Foo`, `impl<T> Foo<T>`,
                // `impl Trait for Foo`, `impl Drop for Foo<'_>`). When a
                // `for` is present, the last ident before it is the trait.
                let mut last_ident: Option<String> = None;
                let mut trait_ident: Option<String> = None;
                while *i < toks.len() && !toks[*i].is_punct('{') {
                    if toks[*i].is_punct(';') {
                        break;
                    }
                    if let Some(s) = toks[*i].ident() {
                        if s == "for" {
                            trait_ident = last_ident.take();
                        } else if s != "where" && s != "dyn" && s != "mut" {
                            last_ident = Some(s.to_string());
                        }
                    } else if toks[*i].is_punct('<') {
                        // Skip generic argument lists so `Foo<Bar>` records
                        // Foo, not Bar.
                        let mut depth = 1;
                        *i += 1;
                        while *i < toks.len() && depth > 0 {
                            match &toks[*i].kind {
                                TokKind::Punct('<') => depth += 1,
                                TokKind::Punct('>') => depth -= 1,
                                _ => {}
                            }
                            *i += 1;
                        }
                        continue;
                    }
                    *i += 1;
                }
                if *i < toks.len() && toks[*i].is_punct('{') {
                    *i += 1;
                    walk(toks, i, last_ident.as_deref(), trait_ident.as_deref(), is_test, out);
                }
            }
            TokKind::Ident(kw) if kw == "mod" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let mod_name =
                    toks.get(*i + 1).and_then(|t| t.ident()).unwrap_or_default().to_string();
                let is_test = in_test || attrs_mark_test(&attrs) || mod_name == "tests";
                *i += 1;
                while *i < toks.len() && !toks[*i].is_punct('{') && !toks[*i].is_punct(';') {
                    *i += 1;
                }
                if *i < toks.len() && toks[*i].is_punct('{') {
                    *i += 1;
                    walk(toks, i, None, None, is_test, out);
                } else if *i < toks.len() {
                    *i += 1; // `mod name;`
                }
            }
            TokKind::Punct('{') => {
                // Non-item block (struct/enum/trait body, const init, …):
                // recurse so nested fns (trait default methods) are found.
                *i += 1;
                walk(toks, i, impl_type, impl_trait, in_test, out);
            }
            _ => {
                if !matches!(t.kind, TokKind::Punct('#')) && !t.is_punct(']') {
                    // Any other token at item level invalidates pending
                    // attributes only when it terminates an item (`;`).
                    if t.is_punct(';') {
                        pending_attrs.clear();
                    }
                }
                *i += 1;
            }
        }
    }
}

fn attrs_mark_test(attrs: &[Vec<String>]) -> bool {
    attrs.iter().any(|idents| {
        // `#[cfg(not(test))]` is production code; anything else mentioning
        // `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ..))]`) is
        // test-only.
        idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn funcs(src: &str) -> Vec<Func> {
        extract_funcs(&lex(src).0)
    }

    #[test]
    fn finds_methods_with_impl_context() {
        let fs = funcs(
            "impl<M: Clone> Group<M> { fn join(&self) -> Member<M> { body(); } }\n\
             impl Drop for Guard<'_> { fn drop(&mut self) { x(); } }\n\
             fn free() {}",
        );
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].name, "join");
        assert_eq!(fs[0].impl_type.as_deref(), Some("Group"));
        assert_eq!(fs[0].impl_trait, None, "inherent impls have no trait");
        assert_eq!(fs[1].name, "drop");
        assert_eq!(fs[1].impl_type.as_deref(), Some("Guard"));
        assert_eq!(fs[1].impl_trait.as_deref(), Some("Drop"));
        assert_eq!(fs[2].impl_type, None);
    }

    #[test]
    fn test_regions_are_marked() {
        let fs = funcs(
            "#[cfg(test)] mod tests { #[test] fn t() { a(); } fn helper() { b(); } }\n\
             fn prod() { c(); }",
        );
        let t = fs.iter().find(|f| f.name == "t").unwrap();
        let helper = fs.iter().find(|f| f.name == "helper").unwrap();
        let prod = fs.iter().find(|f| f.name == "prod").unwrap();
        assert!(t.is_test);
        assert!(helper.is_test, "helpers inside cfg(test) mods are test code");
        assert!(!prod.is_test);
    }

    #[test]
    fn bodyless_trait_methods_are_skipped_and_defaults_found() {
        let fs = funcs("trait T { fn decl(&self); fn dflt(&self) { x(); } }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "dflt");
    }

    #[test]
    fn nested_fn_bodies_stay_inside_parent_body() {
        let fs = funcs("fn outer() { fn inner() { i(); } o(); }");
        assert_eq!(fs.len(), 1, "inner fn tokens belong to outer's body stream");
        assert!(fs[0].body.iter().any(|t| t.ident() == Some("inner")));
    }

    #[test]
    fn sig_mentions_param_types() {
        let fs = funcs("fn refresh(&self, st: &NodeState) { x(); }");
        assert!(fs[0].sig_mentions_type("NodeState"));
        assert!(!fs[0].sig_mentions_type("Other"));
    }
}
