// FAILS: a protocol event recorded and a gauge updated outside the lock
// that orders the state transition they describe.
impl Node {
    fn after_send(&self) {
        self.journal.record(event);
        self.gauges.tocommit_depth.set(depth);
    }
}
