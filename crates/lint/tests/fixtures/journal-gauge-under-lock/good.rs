// PASSES: event and gauge are written under the node-state lock.
impl Node {
    fn after_send(&self) {
        let mut st = self.state.lock();
        self.journal.record(event);
        self.gauges.tocommit_depth.set(st.tocommit.len());
    }
}
