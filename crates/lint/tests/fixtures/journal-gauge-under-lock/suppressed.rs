// PASSES: both sites carry written justifications.
impl Node {
    fn crash_stop(&self) {
        // sirep-lint: allow(journal-gauge-under-lock): crash-stop record; taking the lock here would self-deadlock with mark_crashed
        self.journal.record(event);
        self.gauges.tocommit_depth.set(0); // sirep-lint: allow(journal-gauge-under-lock): final zeroing after the node is fenced; nothing races a dead replica
    }
}
