// FAILS: a suppression without a justification and one naming an
// unknown rule are violations in their own right.
impl Node {
    fn f(&self) {
        // sirep-lint: allow(multicast-under-lock)
        self.gcs.multicast_total(msg);
        // sirep-lint: allow(not-a-real-rule): whatever
        self.other();
    }
}
