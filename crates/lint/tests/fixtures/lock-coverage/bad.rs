//! Failing: lock declarations with no lint.toml class.

struct Node {
    /// Classified: `state` heads the node-state class's lock-exprs.
    state: Mutex<NodeState>,
    /// Unclassified field — invisible to every guard rule.
    stray: Mutex<u64>,
}

/// Unclassified type alias.
type ScratchRegistry = Arc<Mutex<Vec<u64>>>;
