//! Passing: every declaration maps to a class; uses, borrows, and
//! imports are not declarations.

use parking_lot::{Condvar, Mutex};

struct Node {
    state: Mutex<NodeState>,
    cond: Condvar,
}

/// A borrowed parameter is not a declaration.
fn inspect(m: &Mutex<u64>) -> u64 {
    *m.lock()
}

fn build() {
    // Expression position: construction, not declaration.
    let g = Mutex::new(0u64);
    drop(g);
}

#[cfg(test)]
mod tests {
    /// Test-scoped scratch locks are exempt.
    fn scratch() {
        let pad: Mutex<u64> = Mutex::new(0);
        drop(pad);
    }
}
