//! Suppressed: a justified unclassified lock.

struct Bench {
    // sirep-lint: allow(lock-coverage): benchmark-only scratch pad, never reachable from a protocol thread
    pad: Mutex<u64>,
}
