// FAILS: acquires node-state while holding aux — the declared order is
// node-state < aux, so this nesting can deadlock against a compliant
// thread.
impl Node {
    fn wrong_order(&self) {
        let a = self.aux.lock();
        let st = self.state.lock();
        drop(st);
        drop(a);
    }
}
