// PASSES: node-state is taken before aux, matching the declared order.
impl Node {
    fn right_order(&self) {
        let st = self.state.lock();
        let a = self.aux.lock();
        drop(a);
        drop(st);
    }
}
