// PASSES: the inverted acquisition carries a written justification.
impl Node {
    fn startup_only(&self) {
        let a = self.aux.lock();
        // sirep-lint: allow(lock-ordering): runs before any other thread exists (single-threaded startup), so the inversion cannot deadlock
        let st = self.state.lock();
        drop(st);
        drop(a);
    }
}
