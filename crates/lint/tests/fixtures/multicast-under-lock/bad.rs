// FAILS: writeset multicast with the node-state lock not held — the cert
// capture order can diverge from the total-order sequence order.
impl Node {
    fn commit(&self) {
        self.gcs.multicast_total(msg);
    }
}
