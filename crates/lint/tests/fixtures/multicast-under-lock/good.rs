// PASSES: the multicast happens under the node-state lock.
impl Node {
    fn commit(&self) {
        let st = self.state.lock();
        self.gcs.multicast_total(msg);
        drop(st);
    }
}
