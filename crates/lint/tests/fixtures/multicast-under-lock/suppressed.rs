// PASSES: the violation is suppressed with a written justification.
impl Node {
    fn gossip(&self) {
        // sirep-lint: allow(multicast-under-lock): progress gossip is monotone; ordering against certification is irrelevant
        self.gcs.multicast_fifo(msg);
    }
}
