// FAILS: wall clock, ambient RNG, and iteration-order-dependent
// container in fault-schedule code.
use std::collections::HashMap;

fn schedule(seed: u64) -> Decision {
    let now = Instant::now();
    let mut rng = thread_rng();
    decide(now, rng.gen(), seed)
}
