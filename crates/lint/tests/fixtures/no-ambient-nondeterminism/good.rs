// PASSES: the decision is a pure function of (seed, msg, member) and
// uses an order-stable container.
use std::collections::BTreeMap;

fn schedule(seed: u64, msg: &Msg, member: MemberId) -> Decision {
    let mut rng = SmallRng::seed_from_u64(seed ^ msg.hash() ^ member.raw());
    decide(rng.gen())
}
