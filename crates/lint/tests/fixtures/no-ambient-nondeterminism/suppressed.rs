// PASSES: the wall-clock read is justified (it feeds a log line, not
// the schedule).
fn log_stamp() -> u64 {
    // sirep-lint: allow(no-ambient-nondeterminism): timestamp feeds the human-readable log only, never the fault schedule
    Instant::now().elapsed().as_nanos() as u64
}
