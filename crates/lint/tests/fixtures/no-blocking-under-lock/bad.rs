//! Failing: blocking while holding a protocol lock.

impl Node {
    /// The wait is paired with `state` — but `aux` is also held, and a
    /// parked thread must hold nothing but the paired mutex.
    fn wait_with_extra_lock(&self) {
        let aux = self.aux.lock();
        let mut st = self.state.lock();
        self.cond.wait_for(&mut st, TICK);
        drop(st);
        drop(aux);
    }

    /// A channel receive can block indefinitely; no declared lock may be
    /// held across it.
    fn recv_under_lock(&self) -> Msg {
        let st = self.state.lock();
        let msg = self.rx.recv();
        drop(st);
        msg
    }

    /// `other_cond` is not declared as any lock class's condvar, so the
    /// pairing cannot be checked — flagged.
    fn unpaired_wait(&self) {
        let mut g = self.aux.lock();
        self.other_cond.wait(&mut g);
    }
}
