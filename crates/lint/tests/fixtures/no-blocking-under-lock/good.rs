//! Passing: waits hold exactly their paired mutex; receives happen after
//! release.

impl Node {
    fn paired_wait(&self) {
        let mut st = self.state.lock();
        while st.pending() {
            self.cond.wait_for(&mut st, TICK);
        }
        drop(st);
    }

    fn recv_outside(&self) -> Msg {
        let wanted = {
            let st = self.state.lock();
            st.wanted()
        };
        let msg = self.rx.recv();
        self.check(wanted, &msg);
        msg
    }
}
