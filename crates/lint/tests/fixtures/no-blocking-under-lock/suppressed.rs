//! Suppressed: a justified under-lock receive.

impl Node {
    fn drain(&self) {
        let st = self.state.lock();
        // sirep-lint: allow(no-blocking-under-lock): shutdown drain — the channel was closed before this runs, so recv returns immediately with Err
        let _ = self.rx.recv();
        drop(st);
    }
}
