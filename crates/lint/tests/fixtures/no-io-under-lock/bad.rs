//! Failing: socket syscalls while the node-state guard may be live.

impl Node {
    /// The shape of the sequencer-evict bug: a shutdown syscall per dead
    /// peer, all under the lock that orders the whole group.
    fn evict_bad(&self, ids: &[u64]) {
        let mut st = self.state.lock();
        for id in ids {
            if let Some(conn) = st.members.remove(id) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        drop(st);
    }

    /// Dropped on one branch only: the fall-through still may-holds the
    /// guard, so the write is flagged.
    fn may_path_bad(&self, fast: bool) {
        let st = self.state.lock();
        if fast {
            drop(st);
        }
        let _ = self.out.write_all(b"advert");
    }
}
