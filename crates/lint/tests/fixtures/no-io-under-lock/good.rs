//! Passing: materialize under the lock, do the I/O after release — and
//! I/O under the declared writer lock, which exists to serialize frames.

impl Node {
    fn evict_good(&self, ids: &[u64]) {
        let streams = {
            let mut st = self.state.lock();
            st.take_streams(ids)
        };
        for s in streams {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// The frame-writer lock is `allow-under`: holding it across the
    /// write is the point, not a bug.
    fn framed_write(&self, frame: &[u8]) {
        let mut w = self.write.lock();
        let _ = w.write_all(frame);
        let _ = w.flush();
    }

    /// Early-release branch: flush runs only on the path where the guard
    /// was dropped.
    fn branch_release(&self, done: bool) {
        let st = self.state.lock();
        if done {
            drop(st);
            let _ = self.out.flush();
            return;
        }
        st.touch();
    }
}
