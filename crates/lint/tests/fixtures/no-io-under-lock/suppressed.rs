//! Suppressed: a justified under-lock flush.

impl Node {
    fn teardown(&self) {
        let st = self.state.lock();
        // sirep-lint: allow(no-io-under-lock): shutdown-only path — the peer is already gone, and the lock keeps a concurrent rejoin from racing the teardown
        let _ = self.out.flush();
        drop(st);
    }
}
