// FAILS: unwrap, chained expect, bare indexing, and a panic! on a
// protocol path.
impl Node {
    fn apply(&self, k: usize) {
        let ws = self.queue.pop().unwrap();
        let entry = self.entries.get(&k).expect("missing entry");
        let first = ws.items[0];
        panic!("unreachable state");
    }
}
