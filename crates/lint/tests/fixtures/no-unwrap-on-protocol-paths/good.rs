// PASSES: failures route through DbError; lookups are fallible.
impl Node {
    fn apply(&self, k: usize) -> Result<(), DbError> {
        let ws = self.queue.pop().ok_or(DbError::Internal(msg))?;
        let entry = self.entries.get(&k).ok_or(DbError::Internal(msg))?;
        let first = ws.items.first().ok_or(DbError::Internal(msg))?;
        Ok(())
    }
}
