// PASSES: the structural-invariant expect carries a justification.
impl Node {
    fn pop_ready(&mut self) -> Entry {
        let tid = self.ready.pop_first();
        // sirep-lint: allow(no-unwrap-on-protocol-paths): ready ⊆ entries is the queue's structural invariant; a miss is corruption, not a runtime condition
        self.entries.get_mut(&tid).expect("ready tid must be queued")
    }
}
