pub fn commit(chaos: &Chaos) {
    chaos.crash_point(CrashPoint::PreCommit);
}
