pub fn commit(chaos: &Chaos) {
    chaos.crash_point(CrashPoint::PreCommit);
}

pub fn apply(chaos: &Chaos) {
    chaos.crash_point(CrashPoint::PostApply);
}
