pub enum CrashPoint {
    PreCommit,
    PostApply,
}
