pub fn consume(e: &EventKind) {
    match e {
        EventKind::Commit { .. } => {}
        EventKind::Abort => {}
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    /// Test-only consumption must not count: `Trace` stays ignored.
    fn t() {
        let _ = EventKind::Trace;
    }
}
