pub fn consume(e: &EventKind) {
    match e {
        EventKind::Commit { .. } => {}
        _ => {}
    }
}
