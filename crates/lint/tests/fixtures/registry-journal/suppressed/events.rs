pub enum EventKind {
    Commit { tid: u64 },
    Abort,
}
