//! Failing: asymmetric tag sets and a duplicated encode tag.

/// Encodes tag 2 that no decode arm accepts.
impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Data(p) => {
                out.push(0);
                p.encode(out);
            }
            Frame::View(v) => {
                out.push(1);
                v.encode(out);
            }
            Frame::Probe => out.push(2),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Frame::Data(Payload::decode(r)?)),
            1 => Ok(Frame::View(View::decode(r)?)),
            _ => Err(WireError::Corrupt("frame tag")),
        }
    }
}

/// Two variants share tag 0: the decoder cannot tell them apart.
impl Wire for Dup {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Dup::X => out.push(0),
            Dup::Y => out.push(0),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Dup::X),
            _ => Err(WireError::Corrupt("dup tag")),
        }
    }
}
