//! Passing: encode and decode agree tag-for-tag; tag-free impls are
//! skipped entirely.

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Data(p) => {
                out.push(0);
                p.encode(out);
            }
            Frame::Probe => out.push(1),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Frame::Data(Payload::decode(r)?)),
            1 => Ok(Frame::Probe),
            _ => Err(WireError::Corrupt("frame tag")),
        }
    }
}

/// No tag bytes on either side: plain field forwarding, including
/// tuple-index `self.0.encode` which is not a tag literal.
impl Wire for Pair {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Pair(u64::decode(r)?, u64::decode(r)?))
    }
}
