//! Suppressed: a justified tag asymmetry (version-skew shim).

impl Wire for Legacy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Legacy::Current(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    // sirep-lint: allow(wire-tag-registry): decode still accepts retired tag 0 frames from pre-upgrade peers; encode intentionally never emits it
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Legacy::Current(V::migrate(r)?)),
            1 => Ok(Legacy::Current(V::decode(r)?)),
            _ => Err(WireError::Corrupt("legacy tag")),
        }
    }
}
