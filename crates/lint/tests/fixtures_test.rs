//! Fixture tree: every per-file rule has a failing, a passing, and a
//! suppressed example under `tests/fixtures/<rule>/`; the cross-file
//! registry checks each get a bad/good/suppressed mini-workspace under
//! `tests/fixtures/registry-*/` (they need `run`'s whole-tree scan).
//! These run in the quick check tier (`cargo test -p sirep-lint`), so a
//! regression in a rule's detection or in the suppression machinery
//! fails CI immediately.

use sirep_lint::{check_file, load_config_file, rules, run, LintConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixture_cfg() -> LintConfig {
    load_config_file(&fixtures_dir().join("lint.toml")).expect("fixture lint.toml loads")
}

/// Lint one fixture file; returns (violations-of-rule, total-suppressed).
fn lint(cfg: &LintConfig, rel: &str, rule: &str) -> (usize, usize) {
    let src = std::fs::read_to_string(fixtures_dir().join(rel))
        .unwrap_or_else(|e| panic!("read fixture {rel}: {e}"));
    let mut used = BTreeSet::new();
    let res = check_file(rel, &src, cfg, &mut used);
    let hits = res.violations.iter().filter(|v| v.rule == rule).count();
    let other: Vec<_> = res.violations.iter().filter(|v| v.rule != rule).collect();
    assert!(other.is_empty(), "{rel}: unexpected off-rule violations: {other:?}");
    (hits, res.suppressed.len())
}

/// Every rule check_file can evaluate on a single fixture file.
const RULES: [&str; 9] = [
    rules::RULE_MULTICAST,
    rules::RULE_JOURNAL_GAUGE,
    rules::RULE_NONDET,
    rules::RULE_NO_UNWRAP,
    rules::RULE_LOCK_ORDER,
    rules::RULE_NO_IO,
    rules::RULE_NO_BLOCKING,
    rules::RULE_LOCK_COVERAGE,
    rules::RULE_WIRE_TAGS,
];

#[test]
fn bad_fixtures_fail() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, _) = lint(&cfg, &format!("{rule}/bad.rs"), rule);
        assert!(hits > 0, "{rule}/bad.rs must produce at least one `{rule}` violation");
    }
}

#[test]
fn good_fixtures_pass() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, suppressed) = lint(&cfg, &format!("{rule}/good.rs"), rule);
        assert_eq!(hits, 0, "{rule}/good.rs must be clean");
        assert_eq!(suppressed, 0, "{rule}/good.rs must not need suppressions");
    }
}

#[test]
fn suppressed_fixtures_pass_with_justifications() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, suppressed) = lint(&cfg, &format!("{rule}/suppressed.rs"), rule);
        assert_eq!(hits, 0, "{rule}/suppressed.rs must be clean");
        assert!(suppressed > 0, "{rule}/suppressed.rs must exercise a suppression");
    }
}

/// Both failing shapes in `no-io-under-lock/bad.rs` are found: the
/// straight-line under-lock syscall and the may-path one (guard dropped
/// on one branch only).
#[test]
fn no_io_bad_fixture_catches_both_shapes() {
    let cfg = load_fixture_cfg();
    let (hits, _) = lint(&cfg, "no-io-under-lock/bad.rs", rules::RULE_NO_IO);
    assert_eq!(hits, 2, "expected the evict shape and the may-path shape");
}

#[test]
fn unjustified_or_unknown_directives_are_violations() {
    let cfg = load_fixture_cfg();
    let rel = "lint-directive/bad.rs";
    let src = std::fs::read_to_string(fixtures_dir().join(rel)).unwrap();
    let mut used = BTreeSet::new();
    let res = check_file(rel, &src, &cfg, &mut used);
    let directive_hits = res.violations.iter().filter(|v| v.rule == rules::RULE_DIRECTIVE).count();
    assert_eq!(directive_hits, 2, "missing-reason and unknown-rule directives: {res:?}");
    assert!(res.suppressed.is_empty(), "broken directives must never suppress");
}

#[test]
fn lock_order_cycle_is_a_config_error() {
    let err = load_config_file(&fixtures_dir().join("cycle.toml"))
        .expect_err("cyclic lock order must fail to load");
    assert!(err.contains("cycle"), "{err}");
}

// ---------------------------------------------------------------------
// Registry mini-workspaces: cross-file checks through `run`.
// ---------------------------------------------------------------------

/// Run one registry mini-workspace; returns (violations-of-rule,
/// total-suppressed).
fn run_registry(dir: &str, rule: &str) -> (usize, usize) {
    let root = fixtures_dir().join(dir);
    let cfg = load_config_file(&root.join("lint.toml"))
        .unwrap_or_else(|e| panic!("{dir}/lint.toml loads: {e}"));
    let report = run(&root, &cfg).unwrap_or_else(|e| panic!("{dir}: run failed: {e}"));
    let hits = report.violations.iter().filter(|v| v.rule == rule).count();
    let other: Vec<_> = report.violations.iter().filter(|v| v.rule != rule).collect();
    assert!(other.is_empty(), "{dir}: unexpected off-rule violations: {other:?}");
    (hits, report.suppressed.len())
}

#[test]
fn journal_consumer_registry_fixtures() {
    let rule = rules::RULE_JOURNAL_CONSUMERS;
    let (bad, _) = run_registry("registry-journal/bad", rule);
    assert!(bad > 0, "unconsumed variant without an ignore entry must be flagged");
    let (good, good_suppressed) = run_registry("registry-journal/good", rule);
    assert_eq!(good, 0, "consumed + justified-ignore workspace must be clean");
    assert_eq!(good_suppressed, 0);
    let (sup, sup_count) = run_registry("registry-journal/suppressed", rule);
    assert_eq!(sup, 0, "suppressed workspace must report no violations");
    assert!(sup_count > 0, "the [[suppress]] entry must have matched");
}

#[test]
fn chaos_point_registry_fixtures() {
    let rule = rules::RULE_CHAOS_POINTS;
    let (bad, _) = run_registry("registry-chaos/bad", rule);
    assert!(bad > 0, "an unhooked chaos point must be flagged");
    let (good, good_suppressed) = run_registry("registry-chaos/good", rule);
    assert_eq!(good, 0, "fully-hooked workspace must be clean");
    assert_eq!(good_suppressed, 0);
    let (sup, sup_count) = run_registry("registry-chaos/suppressed", rule);
    assert_eq!(sup, 0, "suppressed workspace must report no violations");
    assert!(sup_count > 0, "the [[suppress]] entry must have matched");
}

/// A justified ignore entry whose variant the consumer *does* now match
/// is stale: it must surface as a warning so it gets deleted.
#[test]
fn stale_journal_ignore_entry_warns() {
    let root = fixtures_dir().join("registry-journal/good");
    let mut cfg = load_config_file(&root.join("lint.toml")).unwrap();
    // Point the ignore entry at a variant the consumer matches.
    if let Some(jc) = &mut cfg.registry.journal_consumers {
        jc.ignore[0].variant = "Abort".into();
    }
    let report = run(&root, &cfg).unwrap();
    assert!(
        report.violations.iter().any(|v| v.msg.contains("stale")),
        "consumed-but-ignored variant must be reported: {report:?}"
    );
}

// ---------------------------------------------------------------------
// The real workspace config must always load — a typo in lint.toml
// should be caught by `cargo test`, not discovered when check.sh runs.
// ---------------------------------------------------------------------

#[test]
fn workspace_lint_toml_loads() {
    let ws_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = load_config_file(&ws_root.join("lint.toml")).expect("workspace lint.toml loads");
    assert_eq!(cfg.checker.journal_gauge.len(), 3, "all three journal-gauge scopes configured");
    assert!(cfg.checker.multicast.is_some());
    assert!(cfg.checker.nondet.is_some());
    assert!(cfg.checker.no_unwrap.is_some());
    assert!(cfg.checker.lock_order.is_some());
    assert!(cfg.checker.no_io.is_some());
    assert!(cfg.checker.no_blocking.is_some());
    assert!(cfg.checker.lock_coverage.is_some());
    assert!(cfg.registry.wire_tags.is_some());
    let jc = cfg.registry.journal_consumers.as_ref().expect("journal consumers configured");
    assert_eq!(jc.consumers.len(), 2, "offline auditor + perfetto exporter");
    let cp = cfg.registry.chaos_points.as_ref().expect("chaos points configured");
    assert_eq!(cp.enums.len(), 2, "CrashPoint + PausePoint");
}
