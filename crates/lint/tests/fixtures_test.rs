//! Fixture tree: every rule has a failing, a passing, and a suppressed
//! example under `tests/fixtures/<rule>/`. These run in the quick check
//! tier (`cargo test -p sirep-lint`), so a regression in a rule's
//! detection or in the suppression machinery fails CI immediately.

use sirep_lint::{check_file, load_config_file, rules, LintConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixture_cfg() -> LintConfig {
    load_config_file(&fixtures_dir().join("lint.toml")).expect("fixture lint.toml loads")
}

/// Lint one fixture file; returns (violations-of-rule, total-suppressed).
fn lint(cfg: &LintConfig, rel: &str, rule: &str) -> (usize, usize) {
    let src = std::fs::read_to_string(fixtures_dir().join(rel))
        .unwrap_or_else(|e| panic!("read fixture {rel}: {e}"));
    let mut used = BTreeSet::new();
    let mut suppressed = 0usize;
    let res = check_file(rel, &src, cfg, &mut used, &mut suppressed);
    let hits = res.violations.iter().filter(|v| v.rule == rule).count();
    let other: Vec<_> = res.violations.iter().filter(|v| v.rule != rule).collect();
    assert!(other.is_empty(), "{rel}: unexpected off-rule violations: {other:?}");
    (hits, suppressed)
}

const RULES: [&str; 5] = [
    rules::RULE_MULTICAST,
    rules::RULE_JOURNAL_GAUGE,
    rules::RULE_NONDET,
    rules::RULE_NO_UNWRAP,
    rules::RULE_LOCK_ORDER,
];

#[test]
fn bad_fixtures_fail() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, _) = lint(&cfg, &format!("{rule}/bad.rs"), rule);
        assert!(hits > 0, "{rule}/bad.rs must produce at least one `{rule}` violation");
    }
}

#[test]
fn good_fixtures_pass() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, suppressed) = lint(&cfg, &format!("{rule}/good.rs"), rule);
        assert_eq!(hits, 0, "{rule}/good.rs must be clean");
        assert_eq!(suppressed, 0, "{rule}/good.rs must not need suppressions");
    }
}

#[test]
fn suppressed_fixtures_pass_with_justifications() {
    let cfg = load_fixture_cfg();
    for rule in RULES {
        let (hits, suppressed) = lint(&cfg, &format!("{rule}/suppressed.rs"), rule);
        assert_eq!(hits, 0, "{rule}/suppressed.rs must be clean");
        assert!(suppressed > 0, "{rule}/suppressed.rs must exercise a suppression");
    }
}

#[test]
fn unjustified_or_unknown_directives_are_violations() {
    let cfg = load_fixture_cfg();
    let rel = "lint-directive/bad.rs";
    let src = std::fs::read_to_string(fixtures_dir().join(rel)).unwrap();
    let mut used = BTreeSet::new();
    let mut suppressed = 0usize;
    let res = check_file(rel, &src, &cfg, &mut used, &mut suppressed);
    let directive_hits = res.violations.iter().filter(|v| v.rule == rules::RULE_DIRECTIVE).count();
    assert_eq!(directive_hits, 2, "missing-reason and unknown-rule directives: {res:?}");
    assert_eq!(suppressed, 0, "broken directives must never suppress");
}

#[test]
fn lock_order_cycle_is_a_config_error() {
    let err = load_config_file(&fixtures_dir().join("cycle.toml"))
        .expect_err("cyclic lock order must fail to load");
    assert!(err.contains("cycle"), "{err}");
}

/// The real workspace config must always load — a typo in lint.toml
/// should be caught by `cargo test`, not discovered when check.sh runs.
#[test]
fn workspace_lint_toml_loads() {
    let ws_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = load_config_file(&ws_root.join("lint.toml")).expect("workspace lint.toml loads");
    assert_eq!(cfg.checker.journal_gauge.len(), 3, "all three journal-gauge scopes configured");
    assert!(cfg.checker.multicast.is_some());
    assert!(cfg.checker.nondet.is_some());
    assert!(cfg.checker.no_unwrap.is_some());
    assert!(cfg.checker.lock_order.is_some());
}
