//! Breadth-first exhaustive exploration with canonical-state memoization.
//!
//! BFS (rather than the classic DFS) costs the same number of state
//! visits but guarantees the first violation found lies at minimal depth,
//! so every counterexample trace is already minimal — no separate
//! shrinking pass. The memo set is a `BTreeSet` keyed on the state's
//! derived `Ord`, which is the canonical form: two states comparing equal
//! are behaviorally identical by construction.

use crate::{ProtocolModel, TraceEvent, Violation};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Exploration driver. `depth_bound` is an *exhaustiveness assertion*,
/// not a truncation device: hitting it is reported and treated as a
/// failure by the CLI, because it would mean the scope was not fully
/// explored.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    pub depth_bound: usize,
}

impl Default for Explorer {
    fn default() -> Explorer {
        // Far above any reachable depth of the shipped scopes (the deepest,
        // 3x2-crash, terminates well under 100 steps); a cycle introduced
        // by a future model edit trips this instead of hanging CI.
        Explorer { depth_bound: 256 }
    }
}

/// One step of a counterexample: the transition description plus the
/// journal events it corresponds to.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub description: String,
    pub events: Vec<TraceEvent>,
}

/// A minimal violating run: the schedule from the initial state to the
/// violation, in the journal's event vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    pub scenario: String,
    pub mutations: Vec<String>,
    pub violations: Vec<Violation>,
    pub steps: Vec<Step>,
    /// True when the violation came from `terminal_check` (the last step
    /// is then the one that led into the terminal state).
    pub at_terminal: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# sirep-model counterexample")?;
        writeln!(f, "scenario: {}", self.scenario)?;
        if self.mutations.is_empty() {
            writeln!(f, "mutations: (none — this is a real protocol bug)")?;
        } else {
            writeln!(f, "mutations: [{}]", self.mutations.join(", "))?;
        }
        for v in &self.violations {
            writeln!(f, "violated: {} — {}", v.prop.name(), v.detail)?;
        }
        let kind =
            if self.at_terminal { "to violating terminal state" } else { "last step violates" };
        writeln!(f, "trace ({} steps, minimal, {kind}):", self.steps.len())?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>2}. {}", i + 1, s.description)?;
            for e in &s.events {
                writeln!(f, "        R{}  {:?}", e.replica, e.kind)?;
            }
        }
        Ok(())
    }
}

/// Exploration result for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub scenario: String,
    pub states: usize,
    pub transitions: usize,
    pub terminals: usize,
    pub max_depth: usize,
    pub depth_bound_hit: bool,
    pub violation: Option<Counterexample>,
}

impl Report {
    /// The scope failed: either a property violation or an incomplete
    /// exploration (depth bound hit).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.violation.is_some() || self.depth_bound_hit
    }
}

/// Arena entry: visited state, parent index, and the label that reached
/// it (`None` only for the root).
type ArenaEntry<M> = (<M as ProtocolModel>::State, usize, Option<<M as ProtocolModel>::Label>);

impl Explorer {
    /// Exhaustively explore `model`, stopping at the first (minimal)
    /// violation. Fully deterministic: same model ⇒ same report.
    pub fn explore<M: ProtocolModel>(
        &self,
        model: &M,
        scenario: &str,
        mutations: &[String],
    ) -> Report {
        // Arena of visited states with back-pointers for trace rebuild.
        let mut arena: Vec<ArenaEntry<M>> = Vec::new();
        let mut memo: BTreeSet<M::State> = BTreeSet::new();
        let mut frontier: VecDeque<(usize, usize)> = VecDeque::new();

        let init = model.initial();
        memo.insert(init.clone());
        arena.push((init, usize::MAX, None));
        frontier.push_back((0, 0));

        let mut report = Report {
            scenario: scenario.to_string(),
            states: 1,
            transitions: 0,
            terminals: 0,
            max_depth: 0,
            depth_bound_hit: false,
            violation: None,
        };

        while let Some((idx, depth)) = frontier.pop_front() {
            report.max_depth = report.max_depth.max(depth);
            let labels = model.enabled(&arena[idx].0);
            if labels.is_empty() {
                report.terminals += 1;
                let viols = model.terminal_check(&arena[idx].0);
                if !viols.is_empty() {
                    report.violation = Some(build_counterexample(
                        model, &arena, idx, None, viols, scenario, mutations, true,
                    ));
                    return report;
                }
                continue;
            }
            if depth >= self.depth_bound {
                report.depth_bound_hit = true;
                continue;
            }
            for label in labels {
                let (succ, viols, _events) = model.apply(&arena[idx].0, &label);
                report.transitions += 1;
                if !viols.is_empty() {
                    report.violation = Some(build_counterexample(
                        model,
                        &arena,
                        idx,
                        Some(label),
                        viols,
                        scenario,
                        mutations,
                        false,
                    ));
                    return report;
                }
                if memo.insert(succ.clone()) {
                    report.states += 1;
                    arena.push((succ, idx, Some(label)));
                    frontier.push_back((arena.len() - 1, depth + 1));
                }
            }
        }
        report
    }
}

/// Rebuild the schedule from the arena back-pointers, then replay it from
/// the initial state to regenerate descriptions and journal events.
#[allow(clippy::too_many_arguments)]
fn build_counterexample<M: ProtocolModel>(
    model: &M,
    arena: &[ArenaEntry<M>],
    end: usize,
    extra: Option<M::Label>,
    violations: Vec<Violation>,
    scenario: &str,
    mutations: &[String],
    at_terminal: bool,
) -> Counterexample {
    let mut labels: Vec<M::Label> = Vec::new();
    let mut cur = end;
    while cur != 0 {
        let (_, parent, label) = &arena[cur];
        labels.push(label.clone().expect("non-root arena entries carry a label"));
        cur = *parent;
    }
    labels.reverse();
    labels.extend(extra);

    let mut steps = Vec::new();
    let mut state = model.initial();
    for label in &labels {
        let (succ, _viols, events) = model.apply(&state, label);
        steps.push(Step { description: model.describe(label), events });
        state = succ;
    }
    Counterexample {
        scenario: scenario.to_string(),
        mutations: mutations.to_vec(),
        violations,
        steps,
        at_terminal,
    }
}
