//! # sirep-model: bounded exhaustive model checking for SRCA-Rep
//!
//! A pure-Rust, dependency-free state-space explorer (same spirit as
//! `sirep-lint`) that enumerates **every** interleaving of a small scope —
//! 2–3 transactions over 2–3 replicas — of an abstracted SRCA-Rep state
//! machine: begin (with the §4.3.3 hole wait), local validation
//! (adjustment 1), total-order multicast, certification, group-commit
//! apply with the smallest-tid hole gate, the certification-free
//! read-only fast path, hole open/close/sync (adjustment 3), crash,
//! in-doubt resolution, and recovery.
//!
//! Exploration is breadth-first with canonical-state memoization and a
//! depth bound, so the first violation found is a **minimal**
//! counterexample. Every transition and every terminal state is checked
//! against the properties of `DESIGN.md §17`:
//!
//! - **P1 snapshot-prefix** — a transaction's snapshot is a prefix
//!   `{1..s}` of the global commit order (the operational core of the
//!   Raad–Lahav–Vafeiadis SI axiomatization: no hole may be visible at
//!   begin).
//! - **P2 first-committer-wins** — no two concurrent committed update
//!   transactions with intersecting writesets.
//! - **P3 capture agreement** — the journaled snapshot watermark equals
//!   the snapshot the engine transaction actually reads.
//! - **P4 prune-watermark soundness** — the ws_list watermark is monotone
//!   and no writeset is ever certified with `cert` below it.
//! - **P5 verdict agreement** — every replica assigns the same verdict and
//!   the same global tid to the same sequenced writeset (Thm 1).
//! - **P6 hole discipline** — no remote commit creates a new hole while a
//!   local transaction is waiting to start and none is running (§4.3.3).
//! - **P7 session order** — in-doubt resolution reports "committed" only
//!   once the transaction is committed at the answering replica, so a
//!   failed-over client's next snapshot contains its own write.
//! - **L1 liveness/convergence** — terminal states have no open holes, no
//!   stuck queue entries, no permanently waiting begins, and all live
//!   replicas agree on the committed prefix.
//!
//! Violations are emitted as minimal counterexample traces **in the
//! journal's event vocabulary** ([`sirep_common::EventKind`]), replayable
//! as deterministic regression tests against the real `sirep-core` node
//! (see `tests/model_replay.rs` at the workspace root).
//!
//! The abstraction lives behind the [`ProtocolModel`] trait so future
//! variants (the sharded-certification work of ROADMAP item 2) plug into
//! the same explorer and property set.
//!
//! Determinism is load-bearing: two runs over the same scope must produce
//! identical state counts and identical traces. The crate therefore uses
//! only ordered collections (`BTreeMap`/`BTreeSet`/`Vec`), never reads
//! clocks or RNGs, and is covered by `lint.toml`'s
//! `no-ambient-nondeterminism` rule.

pub mod explore;
pub mod scenarios;
pub mod srca;

pub use explore::{Counterexample, Explorer, Report};
pub use scenarios::{scope_by_name, Scope, SCOPES};
pub use srca::{Mutation, Scenario, SrcaModel, TxnSpec};

use sirep_common::EventKind;

/// The property a violation was found against. Numbering follows
/// DESIGN.md §17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Prop {
    /// P1: a begin observed a snapshot that is not a prefix of the global
    /// commit order (a hole was visible).
    SnapshotPrefix,
    /// P2: two concurrent committed update transactions with intersecting
    /// writesets both committed.
    FirstCommitterWins,
    /// P3: the journaled snapshot watermark disagrees with the snapshot
    /// the engine transaction actually read.
    CaptureMismatch,
    /// P4: the prune watermark regressed, or a writeset was certified
    /// with `cert` below the watermark (pruned entries not checkable).
    WatermarkSoundness,
    /// P5: two replicas assigned different verdicts or tids to the same
    /// sequenced writeset (Thm 1 broken).
    VerdictAgreement,
    /// P6: a remote commit created a new hole while a local transaction
    /// was waiting to start and none was running (§4.3.3).
    HoleDiscipline,
    /// P7: in-doubt resolution reported "committed" before the
    /// transaction was committed at the answering replica.
    SessionOrder,
    /// L1: a terminal state with open holes, stuck queue entries, a
    /// permanently waiting begin, or diverged live replicas.
    Liveness,
}

impl Prop {
    /// Stable short name (CLI output, trace files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Prop::SnapshotPrefix => "P1-snapshot-prefix",
            Prop::FirstCommitterWins => "P2-first-committer-wins",
            Prop::CaptureMismatch => "P3-capture-agreement",
            Prop::WatermarkSoundness => "P4-watermark-soundness",
            Prop::VerdictAgreement => "P5-verdict-agreement",
            Prop::HoleDiscipline => "P6-hole-discipline",
            Prop::SessionOrder => "P7-session-order",
            Prop::Liveness => "L1-liveness",
        }
    }
}

/// A property violation detected while applying a transition or checking
/// a terminal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub prop: Prop,
    pub detail: String,
}

/// One journal-vocabulary event produced by a model transition: the
/// replica it would be recorded at, and the event itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub replica: u8,
    pub kind: EventKind,
}

/// The abstraction seam: a protocol model the [`Explorer`] can enumerate.
///
/// Implementations must be **pure**: `enabled` and `apply` may depend only
/// on the model's own configuration and the given state, and must
/// enumerate in a deterministic order. The sharded-certification variant
/// (ROADMAP item 2) implements this same trait.
pub trait ProtocolModel {
    /// Canonical state: `Ord` doubles as the memoization key, so two
    /// states comparing equal must be behaviorally identical.
    type State: Clone + Ord + std::fmt::Debug;
    /// A transition label, used to rebuild counterexample traces.
    type Label: Clone + std::fmt::Debug;

    fn initial(&self) -> Self::State;

    /// All transitions enabled in `s`, in a deterministic order.
    fn enabled(&self, s: &Self::State) -> Vec<Self::Label>;

    /// Apply `label` to `s`. Returns the successor state, any property
    /// violations the transition itself exposes, and the journal events
    /// the transition corresponds to (for counterexample rendering).
    fn apply(
        &self,
        s: &Self::State,
        label: &Self::Label,
    ) -> (Self::State, Vec<Violation>, Vec<TraceEvent>);

    /// Liveness/convergence checks on a state with no enabled transitions.
    fn terminal_check(&self, s: &Self::State) -> Vec<Violation>;

    /// Human-readable one-line description of a transition.
    fn describe(&self, label: &Self::Label) -> String;
}
