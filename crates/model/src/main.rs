//! sirep-model CLI: exhaustively explore SRCA-Rep scopes, fail closed.
//!
//! ```text
//! sirep-model --quick                      # CI quick tier (2x2, 3x2)
//! sirep-model --full                       # all shipped scopes
//! sirep-model --scope 2x2 --scope 3x2      # explicit scopes
//! sirep-model --scope 2x2 --mutant skip-certification
//! sirep-model --self-check                 # every mutant must trip
//! sirep-model --emit results               # write MODEL_cex_*.txt on failure
//! ```
//!
//! Exit codes: 0 = all scopes explored exhaustively with zero violations;
//! 1 = violation found or exploration incomplete (fail closed); 2 = usage.

use sirep_model::{scope_by_name, Explorer, Mutation, Prop, Scope, SrcaModel, SCOPES};
use std::process::ExitCode;

struct Args {
    scopes: Vec<&'static Scope>,
    mutations: Vec<Mutation>,
    self_check: bool,
    list: bool,
    emit: Option<String>,
    depth: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scopes: Vec::new(),
        mutations: Vec::new(),
        self_check: false,
        list: false,
        emit: None,
        depth: Explorer::default().depth_bound,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scope" => {
                let name = it.next().ok_or("--scope needs a name")?;
                let scope =
                    scope_by_name(&name).ok_or_else(|| format!("unknown scope '{name}'"))?;
                args.scopes.push(scope);
            }
            "--quick" => args.scopes.extend(SCOPES.iter().filter(|s| s.quick)),
            "--full" => args.scopes.extend(SCOPES.iter()),
            "--mutant" => {
                let name = it.next().ok_or("--mutant needs a name")?;
                let m =
                    Mutation::from_name(&name).ok_or_else(|| format!("unknown mutant '{name}'"))?;
                args.mutations.push(m);
            }
            "--self-check" => args.self_check = true,
            "--list" => args.list = true,
            "--emit" => args.emit = Some(it.next().ok_or("--emit needs a directory")?),
            "--depth" => {
                args.depth =
                    it.next().and_then(|d| d.parse().ok()).ok_or("--depth needs an integer")?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.scopes.is_empty() && !args.self_check && !args.list {
        args.scopes.extend(SCOPES.iter().filter(|s| s.quick));
    }
    Ok(args)
}

fn emit_counterexample(dir: &str, tag: &str, body: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("sirep-model: cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/MODEL_cex_{tag}.txt");
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("sirep-model: counterexample written to {path}"),
        Err(e) => eprintln!("sirep-model: cannot write {path}: {e}"),
    }
}

/// Run one scope (with optional mutations); returns false on failure.
fn run_scope(
    scope: &Scope,
    mutations: &[Mutation],
    explorer: Explorer,
    emit: Option<&str>,
) -> bool {
    let mutation_names: Vec<String> = mutations.iter().map(|m| m.name().to_string()).collect();
    let scenarios = scope.scenarios();
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut max_depth = 0usize;
    for scenario in &scenarios {
        let desc = scenario.describe();
        let model = SrcaModel::with_mutations(scenario.clone(), mutations.iter().copied());
        let report = explorer.explore(&model, &desc, &mutation_names);
        states += report.states;
        transitions += report.transitions;
        terminals += report.terminals;
        max_depth = max_depth.max(report.max_depth);
        if report.depth_bound_hit {
            eprintln!(
                "scope {}: depth bound {} hit on [{desc}] — exploration incomplete, failing closed",
                scope.name, explorer.depth_bound
            );
            return false;
        }
        if let Some(cex) = report.violation {
            let rendered = cex.to_string();
            eprintln!("scope {}: VIOLATION on [{desc}]\n{rendered}", scope.name);
            if let Some(dir) = emit {
                emit_counterexample(dir, scope.name, &rendered);
            }
            return false;
        }
    }
    println!(
        "scope {:>10}: {:>3} scenarios, {:>8} states, {:>8} transitions, {:>6} terminals, max depth {:>3} — ok",
        scope.name,
        scenarios.len(),
        states,
        transitions,
        terminals,
        max_depth
    );
    true
}

/// Fail-closed proof: each seeded mutant must produce a counterexample of
/// the expected property on its designated scope.
fn self_check(explorer: Explorer, emit: Option<&str>) -> bool {
    let expectations: [(Mutation, &str, Prop); 5] = [
        (Mutation::SkipCertification, "2x2", Prop::FirstCommitterWins),
        (Mutation::BreakFirstCommitterWins, "2x2", Prop::FirstCommitterWins),
        (Mutation::NonatomicBeginSnapshot, "2x2", Prop::CaptureMismatch),
        (Mutation::DropHoleGate, "3x2", Prop::SnapshotPrefix),
        (Mutation::EagerInquire, "2x2-crash", Prop::SessionOrder),
    ];
    let mut ok = true;
    for (mutant, scope_name, expect) in expectations {
        let scope = scope_by_name(scope_name).expect("self-check scope exists");
        let mutation_names = vec![mutant.name().to_string()];
        let mut found = None;
        for scenario in scope.scenarios() {
            let desc = scenario.describe();
            let model = SrcaModel::with_mutations(scenario, [mutant]);
            let report = explorer.explore(&model, &desc, &mutation_names);
            if let Some(cex) = report.violation {
                found = Some(cex);
                break;
            }
        }
        match found {
            Some(cex) if cex.violations.iter().any(|v| v.prop == expect) => {
                println!(
                    "self-check {:>28} on {:>9}: counterexample found ({}, {} steps) — ok",
                    mutant.name(),
                    scope_name,
                    expect.name(),
                    cex.steps.len()
                );
            }
            Some(cex) => {
                eprintln!(
                    "self-check {}: counterexample found but violates {:?}, expected {}",
                    mutant.name(),
                    cex.violations.iter().map(|v| v.prop.name()).collect::<Vec<_>>(),
                    expect.name()
                );
                if let Some(dir) = emit {
                    emit_counterexample(dir, mutant.name(), &cex.to_string());
                }
                ok = false;
            }
            None => {
                eprintln!(
                    "self-check {}: NO counterexample on scope {scope_name} — the explorer \
                     failed to detect a seeded protocol bug (not fail-closed)",
                    mutant.name()
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sirep-model: {e}");
            eprintln!(
                "usage: sirep-model [--quick|--full] [--scope NAME]... [--mutant NAME]... \
                 [--self-check] [--emit DIR] [--depth N] [--list]"
            );
            return ExitCode::from(2);
        }
    };
    if args.list {
        for s in SCOPES {
            println!(
                "{:>10}: {} txns x {} replicas, {} keys, crashes<={}{}{}",
                s.name,
                s.txns,
                s.replicas,
                s.keys,
                s.max_crashes,
                if s.allow_recover { " +recover" } else { "" },
                if s.quick { " [quick]" } else { " [full]" }
            );
        }
        return ExitCode::SUCCESS;
    }
    let explorer = Explorer { depth_bound: args.depth };
    let emit = args.emit.as_deref();
    let mut ok = true;
    for scope in &args.scopes {
        ok &= run_scope(scope, &args.mutations, explorer, emit);
    }
    if args.self_check {
        ok &= self_check(explorer, emit);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
