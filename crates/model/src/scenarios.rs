//! Scope catalog: named scenario families the CLI and CI run.
//!
//! A *scope* fixes the cast size (transactions × replicas × keys) and the
//! fault budget; [`Scope::scenarios`] enumerates every assignment of
//! origins and writesets within it, deduplicated up to replica and key
//! renaming (the protocol is symmetric in both, so exploring one
//! representative per orbit is exhaustive).

use crate::srca::{Scenario, TxnSpec};
use std::collections::BTreeSet;

/// A named scenario family.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub name: &'static str,
    pub txns: u8,
    pub replicas: u8,
    pub keys: u8,
    pub max_crashes: u8,
    pub allow_recover: bool,
    /// Runs in the quick CI tier (the rest run in the full tier only).
    pub quick: bool,
}

/// All shipped scopes. `2x2` and `3x2` are the ISSUE's acceptance scopes;
/// `straddle` is the hand-built batch-straddles-a-hole-boundary family
/// for the smallest-tid gate audit.
pub const SCOPES: &[Scope] = &[
    Scope {
        name: "2x2",
        txns: 2,
        replicas: 2,
        keys: 2,
        max_crashes: 0,
        allow_recover: false,
        quick: true,
    },
    Scope {
        name: "3x2",
        txns: 3,
        replicas: 2,
        keys: 2,
        max_crashes: 0,
        allow_recover: false,
        quick: true,
    },
    Scope {
        name: "2x3",
        txns: 2,
        replicas: 3,
        keys: 2,
        max_crashes: 0,
        allow_recover: false,
        quick: false,
    },
    Scope {
        name: "2x2-crash",
        txns: 2,
        replicas: 2,
        keys: 2,
        max_crashes: 1,
        allow_recover: true,
        quick: false,
    },
    Scope {
        name: "3x2-crash",
        txns: 3,
        replicas: 2,
        keys: 2,
        max_crashes: 1,
        allow_recover: false,
        quick: false,
    },
    Scope {
        name: "straddle",
        txns: 4,
        replicas: 2,
        keys: 2,
        max_crashes: 0,
        allow_recover: false,
        quick: false,
    },
];

/// Look up a scope by its CLI name.
#[must_use]
pub fn scope_by_name(name: &str) -> Option<&'static Scope> {
    SCOPES.iter().find(|s| s.name == name)
}

impl Scope {
    /// Enumerate the scope's scenarios, one representative per
    /// replica×key symmetry orbit.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        if self.name == "straddle" {
            return straddle_scenarios();
        }
        let t = usize::from(self.txns);
        let ws_choices: Vec<u8> = (0..(1u8 << self.keys)).collect();
        let mut seen: BTreeSet<Vec<TxnSpec>> = BTreeSet::new();
        let mut out = Vec::new();
        // Odometer over (origin, ws) per transaction.
        let combos = usize::from(self.replicas) * ws_choices.len();
        let total = combos.pow(t as u32);
        for mut code in 0..total {
            let mut txns = Vec::with_capacity(t);
            for _ in 0..t {
                let c = code % combos;
                code /= combos;
                txns.push(TxnSpec {
                    origin: (c / ws_choices.len()) as u8,
                    ws: ws_choices[c % ws_choices.len()],
                });
            }
            if seen.insert(canonical(&txns, self.replicas, self.keys)) {
                out.push(Scenario {
                    replicas: self.replicas,
                    txns,
                    max_crashes: self.max_crashes,
                    allow_recover: self.allow_recover,
                    max_appliers: 2,
                });
            }
        }
        out
    }
}

/// The smallest-tid batch-gate audit family (ISSUE satellite 3): enough
/// same-origin remote traffic that the *other* replica's applier can claim
/// a batch whose tids straddle a not-yet-committed smaller tid (a ready
/// skip over a conflicting blocked entry), while a local transaction
/// exercises the begin-wait path against the resulting hole.
fn straddle_scenarios() -> Vec<Scenario> {
    let base = |last: TxnSpec| Scenario {
        replicas: 2,
        // T0/T1 conflict on k0 (T1 stays blocked behind T0 in the queue),
        // T2 on k1 is ready immediately — a claim of {T0's tid, T2's tid}
        // straddles T1's tid once T1 sequences between them.
        txns: vec![
            TxnSpec { origin: 0, ws: 0b01 },
            TxnSpec { origin: 0, ws: 0b01 },
            TxnSpec { origin: 0, ws: 0b10 },
            last,
        ],
        max_crashes: 0,
        allow_recover: false,
        max_appliers: 2,
    };
    vec![
        // A local reader at R1: its begin must wait out any hole.
        base(TxnSpec { origin: 1, ws: 0 }),
        // A local writer at R1 on the straddled key.
        base(TxnSpec { origin: 1, ws: 0b01 }),
    ]
}

/// Canonical form of a transaction list under replica renaming, key
/// renaming, and transaction reordering: the lexicographic minimum over
/// all permutations. Scopes are small (≤3 replicas, 2 keys, ≤4 txns), so
/// brute force over the orbits is fine.
fn canonical(txns: &[TxnSpec], replicas: u8, keys: u8) -> Vec<TxnSpec> {
    let mut best: Option<Vec<TxnSpec>> = None;
    for rp in permutations(replicas) {
        for kp in permutations(keys) {
            let mut mapped: Vec<TxnSpec> = txns
                .iter()
                .map(|t| TxnSpec { origin: rp[usize::from(t.origin)], ws: permute_bits(t.ws, &kp) })
                .collect();
            mapped.sort_unstable();
            if best.as_ref().is_none_or(|b| mapped < *b) {
                best = Some(mapped);
            }
        }
    }
    best.unwrap_or_default()
}

fn permute_bits(ws: u8, kp: &[u8]) -> u8 {
    let mut out = 0;
    for (from, &to) in kp.iter().enumerate() {
        if ws & (1 << from) != 0 {
            out |= 1 << to;
        }
    }
    out
}

/// All permutations of `0..n` (n ≤ 3 in practice), in a deterministic
/// order.
fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut items: Vec<u8> = (0..n).collect();
    heap_permute(&mut items, 0, &mut out);
    out.sort_unstable();
    out
}

fn heap_permute(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        heap_permute(items, k + 1, out);
        items.swap(k, i);
    }
}
