//! The abstracted SRCA-Rep state machine.
//!
//! One [`State`] is a global configuration: the total-order log (the
//! sequencer's view), one [`RepState`] per replica (certification list,
//! tocommit queue, claimed applier batches, hole tracker, prune
//! watermark), and one [`TxnState`] per client transaction. Transitions
//! mirror `sirep-core`'s real steps at the granularity of its lock holds:
//! everything the node does under one state-lock hold is one atomic model
//! transition (see DESIGN.md §17 for the soundness argument).
//!
//! [`Mutation`]s are seeded faults in the abstract protocol used by the
//! conformance self-tests: each must produce a counterexample, proving
//! the explorer is fail-closed. Two of them (`NonatomicBeginSnapshot`,
//! `EagerInquire`) are exact abstractions of real bugs this model found
//! in `sirep-core` (fixed in the same change that introduced this crate).

use crate::{Prop, ProtocolModel, TraceEvent, Violation};
use sirep_common::{EventKind, GlobalTid, ReplicaId, XactId};
use std::collections::BTreeSet;

/// Replica index (dense, `0..scenario.replicas`).
pub type Rep = u8;
/// Transaction index (dense, `0..scenario.txns.len()`).
pub type Txn = u8;
/// Global transaction id, dense from 1 in validation order.
pub type Tid = u64;

/// One client transaction of a scenario: where it is local, and which
/// abstract keys it writes (a bitmask; `0` = read-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TxnSpec {
    pub origin: Rep,
    pub ws: u8,
}

/// An exploration scenario: the fixed cast of transactions and the fault
/// budget. The explorer enumerates every interleaving of one scenario.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Scenario {
    pub replicas: u8,
    pub txns: Vec<TxnSpec>,
    /// How many replicas may crash during the run.
    pub max_crashes: u8,
    /// Whether crashed replicas may recover via state transfer.
    pub allow_recover: bool,
    /// Outstanding claimed-but-uncommitted applier batches per replica
    /// (the real node runs 2 applier threads by default).
    pub max_appliers: u8,
}

impl Scenario {
    /// Human-readable one-line form (reports, counterexample headers).
    #[must_use]
    pub fn describe(&self) -> String {
        let txns: Vec<String> = self
            .txns
            .iter()
            .enumerate()
            .map(|(i, t)| format!("T{i}@R{}{}", t.origin, ws_name(t.ws)))
            .collect();
        format!(
            "replicas={} txns=[{}] crashes<={}{}",
            self.replicas,
            txns.join(", "),
            self.max_crashes,
            if self.allow_recover { " +recover" } else { "" }
        )
    }
}

fn ws_name(ws: u8) -> String {
    if ws == 0 {
        return ":ro".to_string();
    }
    let keys: Vec<String> =
        (0..8).filter(|k| ws & (1 << k) != 0).map(|k| format!("k{k}")).collect();
    format!(":w[{}]", keys.join(","))
}

/// A seeded fault in the abstract protocol. The conformance self-tests
/// require every mutation to yield a counterexample (fail-closed proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mutation {
    /// Global validation always passes — certification is skipped.
    /// Expected: P2 (two concurrent conflicting writers both commit).
    SkipCertification,
    /// Begins never wait for holes and the group-commit gate is always
    /// open — exactly the SRCA-Opt ablation (§4.3.2 / Fig. 7).
    /// Expected: P1 (a begin observes a snapshot with a hole).
    DropHoleGate,
    /// Local commit-time conflict detection against already-committed
    /// versions (the engine's first-updater-wins) is skipped.
    /// Expected: P2.
    BreakFirstCommitterWins,
    /// The begin's engine snapshot and its recorded watermark are taken
    /// in two separate steps instead of atomically under the state lock —
    /// the shape of the real pre-fix `SrcaOpt` begin bug. Expected: P3.
    NonatomicBeginSnapshot,
    /// In-doubt resolution answers "committed" from the outcome log as
    /// soon as the verdict is known, before the writeset is committed at
    /// the answering replica — the shape of the real pre-fix `inquire`
    /// bug. Expected: P7.
    EagerInquire,
}

impl Mutation {
    pub const ALL: [Mutation; 5] = [
        Mutation::SkipCertification,
        Mutation::DropHoleGate,
        Mutation::BreakFirstCommitterWins,
        Mutation::NonatomicBeginSnapshot,
        Mutation::EagerInquire,
    ];

    /// Stable CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SkipCertification => "skip-certification",
            Mutation::DropHoleGate => "drop-hole-gate",
            Mutation::BreakFirstCommitterWins => "break-first-committer-wins",
            Mutation::NonatomicBeginSnapshot => "nonatomic-begin-snapshot",
            Mutation::EagerInquire => "eager-inquire",
        }
    }

    #[must_use]
    pub fn from_name(name: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.name() == name)
    }
}

// ======================================================================
// State
// ======================================================================

/// Client-visible lifecycle of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    NotStarted,
    /// Blocked in begin until the origin has no holes (§4.3.3).
    WaitingBegin,
    /// `NonatomicBeginSnapshot` only: the engine snapshot is taken but
    /// the watermark not yet recorded (the pre-fix race window).
    SnapTaken,
    Active,
    /// Writeset multicast; waiting for the total-order verdict.
    Submitted,
    /// The origin crashed after the multicast (§5.4 case 3).
    InDoubt,
    Committed,
    Aborted,
    /// Committed via the certification-free read-only fast path.
    RoCommitted,
}

/// One entry of the total-order log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogEntry {
    /// A multicast writeset with the origin's certification watermark.
    Ws { txn: Txn, cert: Tid },
    /// A view change excluding a crashed replica (sequenced after all of
    /// its writesets — the uniform-delivery cut).
    View { crashed: Rep },
    /// A recovered replica re-joined the group.
    Join { rep: Rep },
}

/// One tocommit-queue entry at one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QEntry {
    pub tid: Tid,
    pub txn: Txn,
    pub ws: u8,
    /// A local entry owned by its session thread (appliers skip it).
    pub local_running: bool,
    /// Claimed by an applier batch (still blocks conflicting successors
    /// until the commit removes it — mirrors the real queue).
    pub claimed: bool,
}

/// One replica's protocol state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RepState {
    pub alive: bool,
    /// How many log entries this replica has processed.
    pub delivered: u8,
    /// Group view as a replica bitmask.
    pub view: u8,
    /// Next dense tid this replica will assign (identical everywhere —
    /// P5 checks it).
    pub next_tid: Tid,
    /// Certification list: validated `(tid, ws)`, pruned from the front.
    pub wslist: Vec<(Tid, u8)>,
    /// Tocommit queue in ascending tid order.
    pub queue: Vec<QEntry>,
    /// Claimed, uncommitted applier batches (ascending tids each).
    pub batches: Vec<Vec<Tid>>,
    /// Validated-but-uncommitted tids (the hole tracker's pending set).
    pub pending: Vec<Tid>,
    /// Highest tid committed here (the hole tracker's frontier).
    pub max_committed: Tid,
    /// ws_list prune watermark (monotone).
    pub watermark: Tid,
    /// Per-origin progress promise (highest cert seen from each replica).
    pub adverts: Vec<Tid>,
}

impl RepState {
    fn new(replicas: u8) -> RepState {
        RepState {
            alive: true,
            delivered: 0,
            view: (1u16 << replicas).wrapping_sub(1) as u8,
            next_tid: 1,
            wslist: Vec::new(),
            queue: Vec::new(),
            batches: Vec::new(),
            pending: Vec::new(),
            max_committed: 0,
            watermark: 0,
            adverts: vec![0; replicas as usize],
        }
    }

    /// Some pending tid sits below the commit frontier.
    #[must_use]
    pub fn holes_exist(&self) -> bool {
        self.pending.first().is_some_and(|&p| p < self.max_committed)
    }

    /// Would committing `tid` now create a *new* hole? (HoleTracker
    /// semantics: some pending tid strictly between the frontier and
    /// `tid`.)
    #[must_use]
    pub fn creates_new_hole(&self, tid: Tid) -> bool {
        tid > self.max_committed && self.pending.iter().any(|&p| p > self.max_committed && p < tid)
    }

    /// `tid` has been validated and committed at this replica.
    #[must_use]
    pub fn committed_contains(&self, tid: Tid) -> bool {
        tid >= 1 && tid < self.next_tid && !self.pending.contains(&tid)
    }

    /// Queue indices eligible for an applier claim, in ascending tid
    /// order: unclaimed, not session-owned, and not conflicting with any
    /// earlier entry still in the queue (claimed or not) — the blocker
    /// semantics of the real `TocommitQueue`.
    fn ready(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, e) in self.queue.iter().enumerate() {
            if e.claimed || e.local_running {
                continue;
            }
            let blocked = self.queue[..i].iter().any(|f| f.ws & e.ws != 0);
            if !blocked {
                out.push(i);
            }
        }
        out
    }

    /// Commit `tid` here: drop it from pending and advance the frontier.
    /// Returns `(had_holes, has_holes)` for journal rendering.
    fn commit_tid(&mut self, tid: Tid) -> (bool, bool) {
        let had = self.holes_exist();
        self.pending.retain(|&p| p != tid);
        if tid > self.max_committed {
            self.max_committed = tid;
        }
        self.queue.retain(|e| e.tid != tid);
        (had, self.holes_exist())
    }
}

/// Per-transaction model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TxnState {
    pub phase: Phase,
    /// What the engine snapshot actually contains (frontier at the
    /// moment `db.begin()` ran).
    pub db_snapshot: Tid,
    /// The recorded/journaled snapshot watermark.
    pub snapshot: Tid,
    /// Certification watermark captured at commit request.
    pub cert: Tid,
    /// Global tid assigned at validation (0 = none yet).
    pub tid: Tid,
}

/// One global configuration of the model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct State {
    pub log: Vec<LogEntry>,
    /// Verdict registry parallel to `log`: the first replica to validate
    /// entry `i` records `(passed, tid)`; later replicas must agree (P5).
    pub verdicts: Vec<Option<(bool, Tid)>>,
    pub reps: Vec<RepState>,
    pub txns: Vec<TxnState>,
    pub crashes: u8,
}

impl State {
    /// Local transactions of `origin` blocked in begin (the paper's set A).
    fn waiting(&self, scenario: &Scenario, origin: Rep) -> usize {
        self.txns
            .iter()
            .enumerate()
            .filter(|(i, t)| scenario.txns[*i].origin == origin && t.phase == Phase::WaitingBegin)
            .count()
    }

    /// Local transactions of `origin` begun and not yet finished (the
    /// paper's set B — they may hold engine tuple locks).
    fn running(&self, scenario: &Scenario, origin: Rep) -> usize {
        self.txns
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                scenario.txns[*i].origin == origin
                    && matches!(t.phase, Phase::Active | Phase::Submitted)
            })
            .count()
    }

    /// Log index of transaction `t`'s writeset entry, if multicast.
    fn ws_index(&self, t: Txn) -> Option<usize> {
        self.log.iter().position(|e| matches!(e, LogEntry::Ws { txn, .. } if *txn == t))
    }

    /// The writeset of an assigned tid (via the verdict registry).
    fn ws_of_tid(&self, scenario: &Scenario, tid: Tid) -> u8 {
        for (i, v) in self.verdicts.iter().enumerate() {
            if let Some((true, t)) = v {
                if *t == tid {
                    if let LogEntry::Ws { txn, .. } = self.log[i] {
                        return scenario.txns[txn as usize].ws;
                    }
                }
            }
        }
        0
    }
}

// ======================================================================
// Transitions
// ======================================================================

/// One transition label. Enumerated in `Ord` order, which fixes the
/// deterministic exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Label {
    /// Attempt to begin: waits on holes (SRCA-Rep) or proceeds.
    Begin(Txn),
    /// A waiting begin resumes once the holes have drained.
    Resume(Txn),
    /// `NonatomicBeginSnapshot` only: record the watermark (second step).
    Record(Txn),
    /// Commit request: local validation, cert capture, multicast.
    Submit(Txn),
    /// Read-only fast-path commit (no multicast, no certification).
    RoCommit(Txn),
    /// A validated local transaction commits on its session thread.
    LocalCommit(Txn),
    /// Replica processes its next total-order log entry.
    Deliver(Rep),
    /// An applier claims the first `k` ready queue entries as a batch.
    Claim(Rep, u8),
    /// Group-commit claimed batch `b` (hole gate on its smallest tid).
    GroupCommit(Rep, u8),
    /// Crash-stop a replica (view change is sequenced behind its log).
    Crash(Rep),
    /// Resolve an in-doubt transaction at a surviving replica (§5.4).
    Resolve(Txn, Rep),
    /// A crashed replica recovers via state transfer from a donor.
    Recover(Rep, Rep),
}

/// The abstract SRCA-Rep model: a scenario plus an optional set of
/// seeded mutations.
#[derive(Debug, Clone)]
pub struct SrcaModel {
    pub scenario: Scenario,
    pub mutations: BTreeSet<Mutation>,
}

impl SrcaModel {
    #[must_use]
    pub fn new(scenario: Scenario) -> SrcaModel {
        SrcaModel { scenario, mutations: BTreeSet::new() }
    }

    #[must_use]
    pub fn with_mutations(
        scenario: Scenario,
        mutations: impl IntoIterator<Item = Mutation>,
    ) -> SrcaModel {
        SrcaModel { scenario, mutations: mutations.into_iter().collect() }
    }

    fn has(&self, m: Mutation) -> bool {
        self.mutations.contains(&m)
    }

    fn xact(&self, t: Txn) -> XactId {
        XactId::new(ReplicaId::new(u64::from(self.scenario.txns[t as usize].origin)), u64::from(t))
    }

    fn ws(&self, t: Txn) -> u8 {
        self.scenario.txns[t as usize].ws
    }

    fn origin(&self, t: Txn) -> Rep {
        self.scenario.txns[t as usize].origin
    }

    /// The §4.3.3 commit rule, mirroring `HoleTracker::may_commit`.
    fn may_commit(&self, s: &State, r: Rep, tid: Tid) -> bool {
        if self.has(Mutation::DropHoleGate) {
            return true;
        }
        let rep = &s.reps[r as usize];
        s.waiting(&self.scenario, r) == 0
            || s.running(&self.scenario, r) > 0
            || !rep.creates_new_hole(tid)
    }

    /// P1: the snapshot `{1..snap}` at `r` must be a committed prefix —
    /// no pending tid at or below the frontier the snapshot reflects.
    fn check_snapshot_prefix(&self, s: &State, r: Rep, snap: Tid, t: Txn) -> Vec<Violation> {
        let rep = &s.reps[r as usize];
        let hole: Vec<Tid> = rep.pending.iter().copied().filter(|&p| p <= snap).collect();
        if hole.is_empty() {
            Vec::new()
        } else {
            vec![Violation {
                prop: Prop::SnapshotPrefix,
                detail: format!(
                    "T{t} began at R{r} with snapshot {snap} while tids {hole:?} are \
                     validated but uncommitted there — the snapshot is not a prefix \
                     of the commit order (1-copy-SI broken)"
                ),
            }]
        }
    }

    /// P2: no two concurrent committed writers on the same key. Checked
    /// when the second of the pair gets its verdict.
    fn check_first_committer_wins(&self, s: &State, t: Txn, tid: Tid) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, other) in s.txns.iter().enumerate() {
            let o = i as Txn;
            if o == t || other.tid == 0 {
                continue;
            }
            let concurrent = s.txns[t as usize].db_snapshot < other.tid && other.db_snapshot < tid;
            if concurrent && self.ws(o) & self.ws(t) != 0 {
                out.push(Violation {
                    prop: Prop::FirstCommitterWins,
                    detail: format!(
                        "T{t} (tid {tid}, snapshot {}) and T{o} (tid {}, snapshot {}) are \
                         concurrent, write intersecting keys, and both passed validation \
                         — first-committer-wins is broken",
                        s.txns[t as usize].db_snapshot, other.tid, other.db_snapshot
                    ),
                });
            }
        }
        out
    }

    /// Begin bookkeeping shared by `Begin`/`Resume`: take the snapshot
    /// (atomically, or just the engine half under the nonatomic mutant).
    fn do_begin(&self, s: &mut State, t: Txn) -> (Vec<Violation>, Vec<TraceEvent>) {
        let r = self.origin(t);
        let snap = s.reps[r as usize].max_committed;
        let viols = self.check_snapshot_prefix(s, r, snap, t);
        let tx = &mut s.txns[t as usize];
        tx.db_snapshot = snap;
        if self.has(Mutation::NonatomicBeginSnapshot) {
            // The race window: the engine snapshot exists but the
            // watermark is recorded by a later `Record` transition.
            tx.phase = Phase::SnapTaken;
            (viols, Vec::new())
        } else {
            tx.snapshot = snap;
            tx.phase = Phase::Active;
            (
                viols,
                vec![TraceEvent { replica: r, kind: EventKind::TxBegin { xact: self.xact(t) } }],
            )
        }
    }

    /// Commit `tid` at replica `r`, emitting hole + commit events the way
    /// the real node journals them.
    fn do_commit(&self, s: &mut State, r: Rep, tid: Tid, events: &mut Vec<TraceEvent>) {
        let txn = s
            .txns
            .iter()
            .position(|tx| tx.tid == tid)
            .map_or_else(|| XactId::new(ReplicaId::new(u64::from(r)), 99), |i| self.xact(i as Txn));
        let (had, has) = s.reps[r as usize].commit_tid(tid);
        if !had && has {
            events.push(TraceEvent {
                replica: r,
                kind: EventKind::HoleOpened { tid: GlobalTid::new(tid) },
            });
        } else if had && !has {
            events.push(TraceEvent {
                replica: r,
                kind: EventKind::HoleClosed { tid: GlobalTid::new(tid) },
            });
        }
        events.push(TraceEvent {
            replica: r,
            kind: EventKind::Commit { xact: txn, tid: GlobalTid::new(tid) },
        });
    }
}

impl ProtocolModel for SrcaModel {
    type State = State;
    type Label = Label;

    fn initial(&self) -> State {
        State {
            log: Vec::new(),
            verdicts: Vec::new(),
            reps: (0..self.scenario.replicas)
                .map(|_| RepState::new(self.scenario.replicas))
                .collect(),
            txns: vec![
                TxnState {
                    phase: Phase::NotStarted,
                    db_snapshot: 0,
                    snapshot: 0,
                    cert: 0,
                    tid: 0,
                };
                self.scenario.txns.len()
            ],
            crashes: 0,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn enabled(&self, s: &State) -> Vec<Label> {
        let mut out = Vec::new();
        for (i, tx) in s.txns.iter().enumerate() {
            let t = i as Txn;
            let r = self.origin(t);
            let rep = &s.reps[r as usize];
            match tx.phase {
                Phase::NotStarted if rep.alive => out.push(Label::Begin(t)),
                Phase::WaitingBegin if rep.alive && !rep.holes_exist() => {
                    out.push(Label::Resume(t));
                }
                Phase::SnapTaken if rep.alive => out.push(Label::Record(t)),
                Phase::Active if rep.alive => {
                    if self.ws(t) == 0 {
                        out.push(Label::RoCommit(t));
                    } else {
                        out.push(Label::Submit(t));
                    }
                }
                Phase::Submitted if rep.alive => {
                    // The session thread may commit once the origin has
                    // validated the writeset with a pass verdict.
                    if let Some(idx) = s.ws_index(t) {
                        if usize::from(rep.delivered) > idx {
                            if let Some((true, _)) = s.verdicts[idx] {
                                out.push(Label::LocalCommit(t));
                            }
                        }
                    }
                }
                Phase::InDoubt => {
                    if let Some(idx) = s.ws_index(t) {
                        for (k, rep2) in s.reps.iter().enumerate() {
                            if !rep2.alive || usize::from(rep2.delivered) <= idx {
                                continue;
                            }
                            let Some((passed, tid)) = s.verdicts[idx] else { continue };
                            let visible = !passed
                                || rep2.committed_contains(tid)
                                || self.has(Mutation::EagerInquire);
                            if visible {
                                out.push(Label::Resolve(t, k as Rep));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for (k, rep) in s.reps.iter().enumerate() {
            let r = k as Rep;
            if !rep.alive {
                if self.scenario.allow_recover {
                    for (d, donor) in s.reps.iter().enumerate() {
                        if donor.alive {
                            out.push(Label::Recover(r, d as Rep));
                        }
                    }
                }
                continue;
            }
            if usize::from(rep.delivered) < s.log.len() {
                out.push(Label::Deliver(r));
            }
            if rep.batches.len() < usize::from(self.scenario.max_appliers) {
                let ready = rep.ready().len();
                for kk in 1..=ready {
                    out.push(Label::Claim(r, kk as u8));
                }
            }
            for (b, batch) in rep.batches.iter().enumerate() {
                if self.may_commit(s, r, batch[0]) {
                    out.push(Label::GroupCommit(r, b as u8));
                }
            }
            if s.crashes < self.scenario.max_crashes
                && s.reps.iter().filter(|x| x.alive).count() >= 2
            {
                out.push(Label::Crash(r));
            }
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn apply(&self, s: &State, label: &Label) -> (State, Vec<Violation>, Vec<TraceEvent>) {
        let mut s = s.clone();
        let mut viols = Vec::new();
        let mut events = Vec::new();
        match *label {
            Label::Begin(t) => {
                let r = self.origin(t);
                let gated = !self.has(Mutation::DropHoleGate);
                if gated && s.reps[r as usize].holes_exist() {
                    s.txns[t as usize].phase = Phase::WaitingBegin;
                } else {
                    let (v, e) = self.do_begin(&mut s, t);
                    viols = v;
                    events = e;
                }
            }
            Label::Resume(t) => {
                let (v, e) = self.do_begin(&mut s, t);
                viols = v;
                events = e;
            }
            Label::Record(t) => {
                // Second half of the nonatomic begin: the watermark is
                // read *now*, possibly after commits the engine snapshot
                // cannot contain.
                let r = self.origin(t);
                let snap = s.reps[r as usize].max_committed;
                let tx = &mut s.txns[t as usize];
                tx.snapshot = snap;
                tx.phase = Phase::Active;
                events.push(TraceEvent {
                    replica: r,
                    kind: EventKind::TxBegin { xact: self.xact(t) },
                });
            }
            Label::Submit(t) => {
                let r = self.origin(t);
                let ws = self.ws(t);
                let rep = &s.reps[r as usize];
                // Adjustment 1: local validation against the tocommit
                // queue only.
                let queue_conflict = rep.queue.iter().any(|e| e.ws & ws != 0);
                // The engine's first-updater-wins: a committed version
                // newer than our snapshot on a key we write aborts us.
                let fuw_conflict = !self.has(Mutation::BreakFirstCommitterWins)
                    && (s.txns[t as usize].db_snapshot + 1..rep.next_tid).any(|tid| {
                        rep.committed_contains(tid) && s.ws_of_tid(&self.scenario, tid) & ws != 0
                    });
                if queue_conflict || fuw_conflict {
                    s.txns[t as usize].phase = Phase::Aborted;
                    events.push(TraceEvent {
                        replica: r,
                        kind: EventKind::Abort { xact: self.xact(t) },
                    });
                } else {
                    let cert = rep.next_tid - 1;
                    s.txns[t as usize].cert = cert;
                    s.txns[t as usize].phase = Phase::Submitted;
                    s.log.push(LogEntry::Ws { txn: t, cert });
                    s.verdicts.push(None);
                    events.push(TraceEvent {
                        replica: r,
                        kind: EventKind::CertCapture {
                            xact: self.xact(t),
                            cert: GlobalTid::new(cert),
                        },
                    });
                    events.push(TraceEvent {
                        replica: r,
                        kind: EventKind::Multicast { xact: self.xact(t) },
                    });
                }
            }
            Label::RoCommit(t) => {
                let r = self.origin(t);
                let tx = s.txns[t as usize];
                // P3: the journaled snapshot must be the snapshot the
                // reads actually saw.
                if tx.snapshot != tx.db_snapshot {
                    viols.push(Violation {
                        prop: Prop::CaptureMismatch,
                        detail: format!(
                            "read-only T{t} at R{r} journals snapshot {} but its engine \
                             snapshot contains only tids <= {} — the journal (and the \
                             auditor) are told a lie",
                            tx.snapshot, tx.db_snapshot
                        ),
                    });
                }
                s.txns[t as usize].phase = Phase::RoCommitted;
                events.push(TraceEvent {
                    replica: r,
                    kind: EventKind::LocalReadOnly {
                        xact: self.xact(t),
                        snapshot: GlobalTid::new(tx.snapshot),
                    },
                });
            }
            Label::LocalCommit(t) => {
                let r = self.origin(t);
                let tid = s.txns[t as usize].tid;
                self.do_commit(&mut s, r, tid, &mut events);
                s.txns[t as usize].phase = Phase::Committed;
            }
            Label::Deliver(r) => {
                let idx = usize::from(s.reps[r as usize].delivered);
                s.reps[r as usize].delivered += 1;
                match s.log[idx] {
                    LogEntry::Ws { txn: t, cert } => {
                        let ws = self.ws(t);
                        events.push(TraceEvent {
                            replica: r,
                            kind: EventKind::TotalOrderDeliver {
                                xact: self.xact(t),
                                cert: GlobalTid::new(cert),
                            },
                        });
                        // P4: certifying below the watermark means pruned
                        // entries were not checked.
                        if cert < s.reps[r as usize].watermark {
                            viols.push(Violation {
                                prop: Prop::WatermarkSoundness,
                                detail: format!(
                                    "R{r} delivered T{t} with cert {cert} below its prune \
                                     watermark {} — conflicts may have been pruned away",
                                    s.reps[r as usize].watermark
                                ),
                            });
                        }
                        // Progress promise + pruning.
                        {
                            let rep = &mut s.reps[r as usize];
                            let o = usize::from(self.origin(t));
                            rep.adverts[o] = rep.adverts[o].max(cert);
                            let wm = (0..rep.adverts.len())
                                .filter(|m| rep.view & (1 << m) != 0)
                                .map(|m| rep.adverts[m])
                                .min()
                                .unwrap_or(0);
                            if wm > rep.watermark {
                                let before = rep.wslist.len();
                                rep.wslist.retain(|&(tid, _)| tid > wm);
                                let removed = (before - rep.wslist.len()) as u64;
                                rep.watermark = wm;
                                if removed > 0 {
                                    events.push(TraceEvent {
                                        replica: r,
                                        kind: EventKind::WsListPruned {
                                            watermark: GlobalTid::new(wm),
                                            removed,
                                        },
                                    });
                                }
                            }
                        }
                        let passed = self.has(Mutation::SkipCertification)
                            || !s.reps[r as usize]
                                .wslist
                                .iter()
                                .any(|&(tid, w)| tid > cert && w & ws != 0);
                        let tid = if passed { s.reps[r as usize].next_tid } else { 0 };
                        // P5: every replica must reach the same verdict
                        // and assign the same tid (Thm 1).
                        match s.verdicts[idx] {
                            None => {
                                s.verdicts[idx] = Some((passed, tid));
                                if passed {
                                    s.txns[t as usize].tid = tid;
                                    viols.extend(self.check_first_committer_wins(&s, t, tid));
                                }
                            }
                            Some((p0, t0)) => {
                                if p0 != passed || (passed && t0 != tid) {
                                    viols.push(Violation {
                                        prop: Prop::VerdictAgreement,
                                        detail: format!(
                                            "R{r} decided (passed={passed}, tid={tid}) for T{t} \
                                             but an earlier replica decided (passed={p0}, \
                                             tid={t0}) — Thm 1 broken"
                                        ),
                                    });
                                }
                            }
                        }
                        events.push(TraceEvent {
                            replica: r,
                            kind: EventKind::ValidationVerdict {
                                xact: self.xact(t),
                                tid: passed.then(|| GlobalTid::new(tid)),
                                passed,
                            },
                        });
                        if passed {
                            let local =
                                self.origin(t) == r && s.txns[t as usize].phase == Phase::Submitted;
                            let rep = &mut s.reps[r as usize];
                            rep.next_tid += 1;
                            rep.wslist.push((tid, ws));
                            rep.pending.push(tid);
                            rep.pending.sort_unstable();
                            rep.queue.push(QEntry {
                                tid,
                                txn: t,
                                ws,
                                local_running: local,
                                claimed: false,
                            });
                            rep.queue.sort_unstable_by_key(|e| e.tid);
                        } else if self.origin(t) == r
                            && s.txns[t as usize].phase == Phase::Submitted
                        {
                            s.txns[t as usize].phase = Phase::Aborted;
                            events.push(TraceEvent {
                                replica: r,
                                kind: EventKind::Abort { xact: self.xact(t) },
                            });
                        }
                    }
                    LogEntry::View { crashed } => {
                        let rep = &mut s.reps[r as usize];
                        rep.view &= !(1 << crashed);
                        events.push(TraceEvent {
                            replica: r,
                            kind: EventKind::ViewChange {
                                members: u64::from(rep.view.count_ones()),
                            },
                        });
                    }
                    LogEntry::Join { rep: j } => {
                        let rep = &mut s.reps[r as usize];
                        rep.view |= 1 << j;
                        events.push(TraceEvent {
                            replica: r,
                            kind: EventKind::ViewChange {
                                members: u64::from(rep.view.count_ones()),
                            },
                        });
                    }
                }
            }
            Label::Claim(r, k) => {
                let ready = s.reps[r as usize].ready();
                let take: Vec<usize> = ready.into_iter().take(usize::from(k)).collect();
                let mut batch = Vec::new();
                for qi in take {
                    let e = &mut s.reps[r as usize].queue[qi];
                    e.claimed = true;
                    batch.push(e.tid);
                    events.push(TraceEvent {
                        replica: r,
                        kind: EventKind::ApplyStart {
                            xact: self.xact(e.txn),
                            tid: GlobalTid::new(e.tid),
                        },
                    });
                }
                s.reps[r as usize].batches.push(batch);
            }
            Label::GroupCommit(r, b) => {
                // The whole batch commits under one state-lock hold in the
                // real node, so it is one atomic transition here. The gate
                // was checked on the smallest tid in `enabled`; P6 checks
                // each member against the strict §4.3.3 discipline.
                let batch = s.reps[r as usize].batches.remove(usize::from(b));
                let waiting = s.waiting(&self.scenario, r);
                let running = s.running(&self.scenario, r);
                for &tid in &batch {
                    if waiting > 0 && running == 0 && s.reps[r as usize].creates_new_hole(tid) {
                        viols.push(Violation {
                            prop: Prop::HoleDiscipline,
                            detail: format!(
                                "R{r} group-committed tid {tid} (batch {batch:?}) creating a \
                                 new hole while a local begin was waiting and no local was \
                                 running — §4.3.3 forbids this"
                            ),
                        });
                    }
                    let txn = s.reps[r as usize].queue.iter().find(|e| e.tid == tid).map(|e| e.txn);
                    if let Some(t) = txn {
                        events.push(TraceEvent {
                            replica: r,
                            kind: EventKind::ApplyDone {
                                xact: self.xact(t),
                                tid: GlobalTid::new(tid),
                            },
                        });
                    }
                    self.do_commit(&mut s, r, tid, &mut events);
                }
            }
            Label::Crash(r) => {
                s.crashes += 1;
                s.reps[r as usize].alive = false;
                s.reps[r as usize].batches.clear();
                s.log.push(LogEntry::View { crashed: r });
                s.verdicts.push(None);
                for (i, tx) in s.txns.iter_mut().enumerate() {
                    if self.origin(i as Txn) != r {
                        continue;
                    }
                    tx.phase = match tx.phase {
                        Phase::Submitted => Phase::InDoubt,
                        Phase::NotStarted
                        | Phase::WaitingBegin
                        | Phase::SnapTaken
                        | Phase::Active => Phase::Aborted,
                        p => p,
                    };
                }
            }
            Label::Resolve(t, r) => {
                let idx = s.ws_index(t).unwrap_or(usize::MAX);
                let (passed, tid) = s.verdicts[idx].unwrap_or((false, 0));
                if passed {
                    // P7: reporting "committed" is a promise that the
                    // client's next snapshot at this replica contains the
                    // write.
                    if !s.reps[r as usize].committed_contains(tid) {
                        viols.push(Violation {
                            prop: Prop::SessionOrder,
                            detail: format!(
                                "R{r} resolved in-doubt T{t} as committed while tid {tid} \
                                 is still uncommitted there — a failed-over client's next \
                                 begin would miss its own write (session order broken)"
                            ),
                        });
                    }
                    s.txns[t as usize].phase = Phase::Committed;
                } else {
                    s.txns[t as usize].phase = Phase::Aborted;
                }
            }
            Label::Recover(r, donor) => {
                let d = s.reps[donor as usize].clone();
                let rep = &mut s.reps[r as usize];
                rep.alive = true;
                rep.delivered = d.delivered;
                rep.view = d.view | (1 << r);
                rep.next_tid = d.next_tid;
                rep.wslist = d.wslist;
                // Transferred queue entries lose their session ownership
                // and claims: the joiner applies them like remote entries.
                rep.queue = d
                    .queue
                    .into_iter()
                    .map(|e| QEntry { local_running: false, claimed: false, ..e })
                    .collect();
                rep.batches = Vec::new();
                rep.pending = d.pending;
                rep.max_committed = d.max_committed;
                rep.watermark = d.watermark;
                rep.adverts = d.adverts;
                s.log.push(LogEntry::Join { rep: r });
                s.verdicts.push(None);
            }
        }
        (s, viols, events)
    }

    fn terminal_check(&self, s: &State) -> Vec<Violation> {
        let mut out = Vec::new();
        let any_alive = s.reps.iter().any(|r| r.alive);
        for (i, tx) in s.txns.iter().enumerate() {
            let done = matches!(tx.phase, Phase::Committed | Phase::Aborted | Phase::RoCommitted)
                || (tx.phase == Phase::InDoubt && !any_alive)
                || !s.reps[usize::from(self.origin(i as Txn))].alive;
            if !done {
                out.push(Violation {
                    prop: Prop::Liveness,
                    detail: format!(
                        "terminal state leaves T{i} stuck in {:?} (no transition can ever \
                         run it to completion)",
                        tx.phase
                    ),
                });
            }
        }
        let mut frontiers = BTreeSet::new();
        for (k, rep) in s.reps.iter().enumerate() {
            if !rep.alive {
                continue;
            }
            if !rep.queue.is_empty() || !rep.pending.is_empty() || !rep.batches.is_empty() {
                out.push(Violation {
                    prop: Prop::Liveness,
                    detail: format!(
                        "terminal state leaves R{k} with undrained work: queue={:?} \
                         pending={:?} batches={:?}",
                        rep.queue.iter().map(|e| e.tid).collect::<Vec<_>>(),
                        rep.pending,
                        rep.batches
                    ),
                });
            }
            if rep.holes_exist() {
                out.push(Violation {
                    prop: Prop::Liveness,
                    detail: format!(
                        "terminal state leaves R{k} with open holes: {:?}",
                        rep.pending
                    ),
                });
            }
            frontiers.insert((rep.next_tid, rep.max_committed));
        }
        if frontiers.len() > 1 {
            out.push(Violation {
                prop: Prop::Liveness,
                detail: format!(
                    "live replicas diverged at the terminal state: \
                     (next_tid, max_committed) in {frontiers:?}"
                ),
            });
        }
        out
    }

    fn describe(&self, label: &Label) -> String {
        match *label {
            Label::Begin(t) => {
                format!("T{t} attempts to begin at R{}", self.origin(t))
            }
            Label::Resume(t) => {
                format!("T{t} resumes its begin at R{} (holes drained)", self.origin(t))
            }
            Label::Record(t) => format!(
                "T{t} records its snapshot watermark at R{} (engine snapshot was taken earlier)",
                self.origin(t)
            ),
            Label::Submit(t) => format!(
                "T{t} requests commit at R{}: local validation, cert capture, multicast",
                self.origin(t)
            ),
            Label::RoCommit(t) => {
                format!("read-only T{t} commits on the fast path at R{}", self.origin(t))
            }
            Label::LocalCommit(t) => {
                format!("T{t} commits on its session thread at R{}", self.origin(t))
            }
            Label::Deliver(r) => format!("R{r} processes its next total-order delivery"),
            Label::Claim(r, k) => {
                format!("an applier at R{r} claims the {k} smallest ready entries")
            }
            Label::GroupCommit(r, b) => {
                format!("an applier at R{r} group-commits claimed batch #{b}")
            }
            Label::Crash(r) => format!("R{r} crash-stops"),
            Label::Resolve(t, r) => format!("in-doubt T{t} is resolved at R{r}"),
            Label::Recover(r, d) => format!("R{r} recovers via state transfer from R{d}"),
        }
    }
}
