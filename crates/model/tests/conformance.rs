//! Conformance self-tests for the explorer (ISSUE 9 satellite 4).
//!
//! Fail-closed proof: each seeded mutant of the abstract protocol must
//! produce a counterexample of the expected property, the unmutated model
//! must explore the acceptance scopes clean, and two runs must be
//! bit-identical (state counts and rendered traces).

use sirep_model::{scope_by_name, Explorer, Mutation, Prop, SrcaModel};

/// Explore a whole scope under a mutation set; return the first
/// counterexample (if any) rendered to a string plus its properties.
fn explore_scope(
    scope: &str,
    mutations: &[Mutation],
) -> (usize, usize, Option<(Vec<Prop>, String)>) {
    let scope = scope_by_name(scope).expect("scope exists");
    let explorer = Explorer::default();
    let names: Vec<String> = mutations.iter().map(|m| m.name().to_string()).collect();
    let mut states = 0;
    let mut transitions = 0;
    for scenario in scope.scenarios() {
        let desc = scenario.describe();
        let model = SrcaModel::with_mutations(scenario, mutations.iter().copied());
        let report = explorer.explore(&model, &desc, &names);
        assert!(!report.depth_bound_hit, "depth bound hit on [{desc}] — not exhaustive");
        states += report.states;
        transitions += report.transitions;
        if let Some(cex) = report.violation {
            let props = cex.violations.iter().map(|v| v.prop).collect();
            return (states, transitions, Some((props, cex.to_string())));
        }
    }
    (states, transitions, None)
}

#[test]
fn base_model_2x2_is_clean() {
    let (states, _, cex) = explore_scope("2x2", &[]);
    assert!(cex.is_none(), "violation in unmutated 2x2: {:?}", cex.map(|c| c.1));
    assert!(states > 1000, "suspiciously small state space: {states}");
}

#[test]
fn base_model_3x2_is_clean() {
    let (states, _, cex) = explore_scope("3x2", &[]);
    assert!(cex.is_none(), "violation in unmutated 3x2: {:?}", cex.map(|c| c.1));
    assert!(states > 50_000, "suspiciously small state space: {states}");
}

#[test]
fn straddle_batches_cannot_break_the_smallest_tid_gate() {
    // ISSUE 9 satellite 3: batches whose tids straddle a blocked smaller
    // tid commit atomically under one state-lock hold, so gating on the
    // smallest tid is sound. The explorer proves it for every
    // interleaving of the hand-built straddle family.
    let (_, _, cex) = explore_scope("straddle", &[]);
    assert!(cex.is_none(), "straddle violation: {:?}", cex.map(|c| c.1));
}

fn assert_mutant_trips(mutant: Mutation, scope: &str, expect: Prop) {
    let (_, _, cex) = explore_scope(scope, &[mutant]);
    let (props, rendered) = cex.unwrap_or_else(|| {
        panic!(
            "mutant {} produced no counterexample on {scope} — explorer is not fail-closed",
            mutant.name()
        )
    });
    assert!(
        props.contains(&expect),
        "mutant {} tripped {:?}, expected {:?}:\n{rendered}",
        mutant.name(),
        props,
        expect
    );
}

#[test]
fn mutant_skip_certification_trips_first_committer_wins() {
    assert_mutant_trips(Mutation::SkipCertification, "2x2", Prop::FirstCommitterWins);
}

#[test]
fn mutant_break_fcw_trips_first_committer_wins() {
    assert_mutant_trips(Mutation::BreakFirstCommitterWins, "2x2", Prop::FirstCommitterWins);
}

#[test]
fn mutant_nonatomic_begin_trips_capture_agreement() {
    // This mutant is the exact shape of the real pre-fix SrcaOpt begin
    // bug (db.begin() outside the state lock) — see tests/model_replay.rs
    // for the replay against the real node.
    assert_mutant_trips(Mutation::NonatomicBeginSnapshot, "2x2", Prop::CaptureMismatch);
}

#[test]
fn mutant_drop_hole_gate_trips_snapshot_prefix() {
    assert_mutant_trips(Mutation::DropHoleGate, "3x2", Prop::SnapshotPrefix);
}

#[test]
fn mutant_eager_inquire_trips_session_order() {
    // The exact shape of the real pre-fix inquire bug (answering
    // Committed from the validation-time outcome log) — see
    // tests/model_replay.rs for the replay against the real node.
    assert_mutant_trips(Mutation::EagerInquire, "2x2-crash", Prop::SessionOrder);
}

#[test]
fn exploration_is_deterministic() {
    // Two full runs of a clean scope and of a violating one must agree on
    // every count and on the rendered counterexample, byte for byte.
    let a = explore_scope("2x2", &[]);
    let b = explore_scope("2x2", &[]);
    assert_eq!(a, b, "clean 2x2 exploration is nondeterministic");

    let a = explore_scope("2x2", &[Mutation::NonatomicBeginSnapshot]);
    let b = explore_scope("2x2", &[Mutation::NonatomicBeginSnapshot]);
    assert_eq!(a.0, b.0, "state counts differ between runs");
    assert_eq!(a.2, b.2, "counterexample traces differ between runs");
}

#[test]
fn counterexamples_are_minimal_and_in_journal_vocabulary() {
    let (_, _, cex) = explore_scope("2x2", &[Mutation::NonatomicBeginSnapshot]);
    let (_, rendered) = cex.expect("mutant trips");
    // BFS guarantees minimal depth; the known-minimal schedule for this
    // bug is 8 steps (begin, record, submit, begin, deliver, local
    // commit, record, ro-commit).
    assert!(rendered.contains("trace (8 steps"), "not minimal:\n{rendered}");
    // Events are rendered in the journal's vocabulary so the trace maps
    // 1:1 onto a replay test against the real node.
    for ev in [
        "TxBegin",
        "Multicast",
        "TotalOrderDeliver",
        "ValidationVerdict",
        "Commit",
        "LocalReadOnly",
    ] {
        assert!(rendered.contains(ev), "missing journal event {ev}:\n{rendered}");
    }
}
