//! Abstract syntax for the supported SQL subset.
//!
//! The subset covers what the paper's workloads need (TPC-W ordering mix,
//! the large-DB and update-intensive micro workloads) plus enough generality
//! to be useful from the examples:
//!
//! ```sql
//! CREATE TABLE t (a INT, b FLOAT, c TEXT, PRIMARY KEY (a))
//! INSERT INTO t VALUES (1, 2.5, 'x')
//! INSERT INTO t (a, c) VALUES (1, 'x')
//! UPDATE t SET b = b + 1 WHERE a = 3 AND c <> 'y'
//! DELETE FROM t WHERE a >= 10
//! SELECT * FROM t WHERE b > 2 ORDER BY a DESC LIMIT 5
//! SELECT COUNT(*) FROM t WHERE ...
//! SELECT SUM(b), MIN(a), MAX(a) FROM t
//! ```

use sirep_storage::{ColumnType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, ColumnType)>,
        pk: Vec<String>,
    },
    /// `CREATE INDEX ON table (column)` — a secondary equality index.
    CreateIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        /// Explicit column list; `None` means all columns positionally.
        columns: Option<Vec<String>>,
        values: Vec<Expr>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    Select(Select),
}

impl Statement {
    /// Whether executing this statement can modify data. DDL counts as a
    /// write (it changes the schema). Sessions declared read-only use this
    /// to reject writes before the engine ever sees them.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub projection: Vec<SelectItem>,
    pub table: String,
    pub predicate: Option<Expr>,
    pub order_by: Vec<(String, OrderDir)>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression (usually a bare column).
    Expr(Expr),
    /// An aggregate over the matching rows.
    Aggregate(AggFunc, AggArg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    Star,
    Column(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderDir {
    Asc,
    Desc,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(String),
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    Not(Box<Expr>),
    IsNull(Box<Expr>, /*negated=*/ bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    // comparison
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    // boolean
    And,
    Or,
    // arithmetic
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

impl Expr {
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    /// Decompose a predicate into its top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary { op: BinOp::And, left, right } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// If this expression is `column = literal`, return the pair — the
    /// planner uses this to turn full scans into point reads.
    pub fn as_column_eq_literal(&self) -> Option<(&str, &Value)> {
        if let Expr::Binary { op: BinOp::Eq, left, right } = self {
            match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                    return Some((c, v));
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_decomposition() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(1)),
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Gt, Expr::col("b"), Expr::lit(2)),
                Expr::bin(BinOp::Lt, Expr::col("c"), Expr::lit(3)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
        // OR does not decompose.
        let o = Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(1)),
            Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(2)),
        );
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn column_eq_literal_detection() {
        let e = Expr::bin(BinOp::Eq, Expr::col("a"), Expr::lit(5));
        let (c, v) = e.as_column_eq_literal().unwrap();
        assert_eq!(c, "a");
        assert_eq!(v, &Value::Int(5));
        // Reversed order also matches.
        let e = Expr::bin(BinOp::Eq, Expr::lit(5), Expr::col("a"));
        assert!(e.as_column_eq_literal().is_some());
        // Inequality does not.
        let e = Expr::bin(BinOp::Lt, Expr::col("a"), Expr::lit(5));
        assert!(e.as_column_eq_literal().is_none());
        // column = column does not.
        let e = Expr::bin(BinOp::Eq, Expr::col("a"), Expr::col("b"));
        assert!(e.as_column_eq_literal().is_none());
    }
}
