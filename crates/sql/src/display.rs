//! Pretty-printing of the AST back to SQL text.
//!
//! `parse(stmt.to_string())` reproduces the same AST — the property test in
//! `proptests.rs` generates random statements and checks exactly that
//! roundtrip, which pins down both the parser's grammar and the printer's
//! precedence handling.

use crate::ast::*;
use sirep_storage::{ColumnType, Value};
use std::fmt;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns, pk } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (c, ty) in columns {
                    write!(f, "{c} {}, ", type_name(*ty))?;
                }
                write!(f, "PRIMARY KEY (")?;
                for (i, c) in pk.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "))")
            }
            Statement::CreateIndex { table, column } => {
                write!(f, "CREATE INDEX ON {table} ({column})")
            }
            Statement::Insert { table, columns, values } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Statement::Update { table, sets, predicate } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, predicate } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Select(s) => s.fmt(f),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Star => write!(f, "*")?,
                SelectItem::Expr(e) => write!(f, "{e}")?,
                SelectItem::Aggregate(func, arg) => {
                    let name = match func {
                        AggFunc::Count => "COUNT",
                        AggFunc::Sum => "SUM",
                        AggFunc::Min => "MIN",
                        AggFunc::Max => "MAX",
                        AggFunc::Avg => "AVG",
                    };
                    match arg {
                        AggArg::Star => write!(f, "{name}(*)")?,
                        AggArg::Column(c) => write!(f, "{name}({c})")?,
                    }
                }
            }
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (c, dir)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
                if *dir == OrderDir::Desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

fn type_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "INT",
        ColumnType::Float => "FLOAT",
        ColumnType::Text => "TEXT",
    }
}

/// Operator precedence tier (higher binds tighter), mirroring the parser.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_child(
            f: &mut fmt::Formatter<'_>,
            child: &Expr,
            parent_prec: u8,
            is_right: bool,
        ) -> fmt::Result {
            let needs_parens = match child {
                Expr::Binary { op, .. } => {
                    let p = precedence(*op);
                    // Same-precedence on the right needs parens because the
                    // grammar is left-associative (e.g. a - (b - c)); at the
                    // comparison tier (3) it is non-associative, so the left
                    // needs them too (`(a = b) > c` cannot chain).
                    p < parent_prec || (p == parent_prec && (is_right || p == 3))
                }
                // `IS NULL` binds at comparison level and cannot itself be
                // a comparison operand without parens.
                Expr::IsNull(..) => parent_prec >= 3,
                Expr::Not(_) => true,
                _ => false,
            };
            if needs_parens {
                write!(f, "({child})")
            } else {
                write!(f, "{child}")
            }
        }
        match self {
            Expr::Literal(Value::Null) => write!(f, "NULL"),
            Expr::Literal(Value::Int(i)) => {
                if *i < 0 {
                    // The grammar has no negative literals; print the
                    // parseable form.
                    write!(f, "(0 - {})", -i)
                } else {
                    write!(f, "{i}")
                }
            }
            Expr::Literal(Value::Float(x)) => {
                if *x < 0.0 {
                    write!(f, "(0 - {:?})", -x)
                } else {
                    write!(f, "{x:?}")
                }
            }
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Binary { op, left, right } => {
                let p = precedence(*op);
                fmt_child(f, left, p, false)?;
                let sym = match op {
                    BinOp::Eq => "=",
                    BinOp::Neq => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, " {sym} ")?;
                fmt_child(f, right, p, true)
            }
            Expr::Not(inner) => {
                write!(f, "NOT ")?;
                match &**inner {
                    Expr::Binary { .. } | Expr::Not(_) => write!(f, "({inner})"),
                    _ => write!(f, "{inner}"),
                }
            }
            Expr::IsNull(inner, negated) => {
                // `IS NULL` is not chainable in the grammar, so a nested
                // IsNull needs parens too.
                match &**inner {
                    Expr::Binary { .. } | Expr::Not(_) | Expr::IsNull(..) => {
                        write!(f, "({inner})")?;
                    }
                    _ => write!(f, "{inner}")?,
                }
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[track_caller]
    fn roundtrip(sql: &str) {
        let ast = parse(sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reprint `{printed}`: {e}"));
        assert_eq!(ast, reparsed, "roundtrip changed the AST for `{printed}`");
    }

    #[test]
    fn statements_roundtrip() {
        roundtrip("CREATE TABLE t (a INT, b FLOAT, c TEXT, PRIMARY KEY (a, c))");
        roundtrip("INSERT INTO t VALUES (1, 2.5, 'x''y')");
        roundtrip("INSERT INTO t (a, c) VALUES (1, 'z')");
        roundtrip("UPDATE t SET b = b * 2 + 1 WHERE a = 3 AND NOT c = 'q'");
        roundtrip("DELETE FROM t WHERE a - 1 - 2 > 0 OR b IS NOT NULL");
        roundtrip(
            "SELECT *, a + 1 FROM t WHERE a = 1 OR b = 2 AND c = 'x' ORDER BY a DESC, b LIMIT 3",
        );
        roundtrip("SELECT COUNT(*), SUM(a), AVG(b) FROM t WHERE a IS NULL");
    }

    #[test]
    fn left_associativity_preserved() {
        // a - b - c must stay ((a-b)-c), not a-(b-c).
        let ast = parse("SELECT a - 1 - 2 FROM t").unwrap();
        let printed = ast.to_string();
        assert_eq!(ast, parse(&printed).unwrap());
        assert!(printed.contains("a - 1 - 2"), "no spurious parens: {printed}");
    }

    #[test]
    fn precedence_parens_inserted() {
        let ast = parse("SELECT (a + 1) * 2 FROM t").unwrap();
        let printed = ast.to_string();
        assert!(printed.contains("(a + 1) * 2"), "{printed}");
        assert_eq!(ast, parse(&printed).unwrap());
    }
}
