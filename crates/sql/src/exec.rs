//! Statement execution over a [`sirep_storage::TxnHandle`].
//!
//! A light planning step turns `WHERE` clauses that pin every primary-key
//! column with an equality literal into point reads; everything else is a
//! snapshot scan with a compiled predicate. This matters for fidelity, not
//! just speed: the cost model charges scans per visited row, so the planner
//! determines how much simulated I/O a statement consumes — mirroring the
//! indexed-vs-sequential distinction in the paper's PostgreSQL setup.

use crate::ast::*;
use crate::parser::parse;
use sirep_common::wire::{Wire, WireError, WireReader};
use sirep_common::DbError;
use sirep_storage::{Database, Key, Row, TableSchema, TxnHandle, Value};
use std::cmp::Ordering;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// SELECT: column names + rows.
    Rows { columns: Vec<String>, rows: Vec<Row> },
    /// INSERT/UPDATE/DELETE: affected row count.
    Affected(usize),
    /// CREATE TABLE.
    Created,
}

impl ExecResult {
    /// Rows, panicking if this was not a SELECT (test convenience).
    pub fn rows(&self) -> &[Row] {
        match self {
            ExecResult::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    pub fn affected(&self) -> usize {
        match self {
            ExecResult::Affected(n) => *n,
            other => panic!("expected affected count, got {other:?}"),
        }
    }
}

impl Wire for ExecResult {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ExecResult::Rows { columns, rows } => {
                out.push(0);
                columns.encode(out);
                rows.encode(out);
            }
            ExecResult::Affected(n) => {
                out.push(1);
                (*n as u64).encode(out);
            }
            ExecResult::Created => out.push(2),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ExecResult::Rows { columns: Vec::decode(r)?, rows: Vec::decode(r)? },
            1 => ExecResult::Affected(u64::decode(r)? as usize),
            2 => ExecResult::Created,
            _ => return Err(WireError::Corrupt("exec result tag")),
        })
    }
}

/// Parse and execute one SQL string inside `txn`.
pub fn execute_sql(db: &Database, txn: &TxnHandle, sql: &str) -> Result<ExecResult, DbError> {
    let stmt = parse(sql)?;
    execute(db, txn, &stmt)
}

/// Execute a parsed statement inside `txn`.
pub fn execute(db: &Database, txn: &TxnHandle, stmt: &Statement) -> Result<ExecResult, DbError> {
    db.cost_model().stmt_overhead();
    match stmt {
        Statement::CreateTable { name, columns, pk } => {
            let cols =
                columns.iter().map(|(n, t)| sirep_storage::Column::new(n.clone(), *t)).collect();
            let pk_refs: Vec<&str> = pk.iter().map(String::as_str).collect();
            let schema = TableSchema::new(name.clone(), cols, &pk_refs)?;
            db.create_table(schema)?;
            Ok(ExecResult::Created)
        }
        Statement::CreateIndex { table, column } => {
            db.create_index(table, column)?;
            Ok(ExecResult::Created)
        }
        Statement::Insert { table, columns, values } => {
            let schema =
                db.table_schema(table).ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            let mut row = vec![Value::Null; schema.arity()];
            match columns {
                None => {
                    if values.len() != schema.arity() {
                        return Err(DbError::Parse(format!(
                            "INSERT arity {} does not match table {} arity {}",
                            values.len(),
                            table,
                            schema.arity()
                        )));
                    }
                    for (i, v) in values.iter().enumerate() {
                        row[i] = eval_const(v)?;
                    }
                }
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(DbError::Parse(
                            "INSERT column list and VALUES arity differ".into(),
                        ));
                    }
                    for (c, v) in cols.iter().zip(values) {
                        let idx = schema
                            .column_index(c)
                            .ok_or_else(|| DbError::UnknownColumn(c.clone()))?;
                        row[idx] = eval_const(v)?;
                    }
                }
            }
            txn.insert(table, row)?;
            Ok(ExecResult::Affected(1))
        }
        Statement::Update { table, sets, predicate } => {
            let schema =
                db.table_schema(table).ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            let compiled_sets: Vec<(usize, CExpr)> = sets
                .iter()
                .map(|(c, e)| {
                    let idx =
                        schema.column_index(c).ok_or_else(|| DbError::UnknownColumn(c.clone()))?;
                    Ok((idx, compile(e, &schema)?))
                })
                .collect::<Result<_, DbError>>()?;
            let matching = fetch_matching(txn, db, table, &schema, predicate.as_ref())?;
            let n = matching.len();
            for old in matching {
                let mut new = old.clone();
                for (idx, e) in &compiled_sets {
                    new[*idx] = eval(e, &old);
                }
                let key = schema.key_of(&old);
                txn.update_key(table, key, new)?;
            }
            Ok(ExecResult::Affected(n))
        }
        Statement::Delete { table, predicate } => {
            let schema =
                db.table_schema(table).ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            let matching = fetch_matching(txn, db, table, &schema, predicate.as_ref())?;
            let n = matching.len();
            for row in matching {
                txn.delete_key(table, schema.key_of(&row))?;
            }
            Ok(ExecResult::Affected(n))
        }
        Statement::Select(sel) => select(db, txn, sel),
    }
}

/// Fetch all rows matching a predicate. Plan, in order of preference:
/// 1. **point read** when the predicate pins the full primary key;
/// 2. **secondary-index lookup** when an equality conjunct hits an indexed
///    column (candidates are re-checked against the full predicate);
/// 3. **full scan** otherwise.
fn fetch_matching(
    txn: &TxnHandle,
    db: &Database,
    table: &str,
    schema: &TableSchema,
    predicate: Option<&Expr>,
) -> Result<Vec<Row>, DbError> {
    match predicate {
        None => txn.scan(table, |_| true),
        Some(pred) => {
            let compiled = compile(pred, schema)?;
            if let Some(key) = point_key(pred, schema) {
                // Point read; re-check the full predicate (it may contain
                // more conjuncts than the key columns).
                return match txn.read(table, &key)? {
                    Some(row) if truthy(&eval(&compiled, &row)) => Ok(vec![row]),
                    _ => Ok(Vec::new()),
                };
            }
            // Secondary index: first equality conjunct on an indexed column.
            let indexed = db.indexed_columns(table);
            if !indexed.is_empty() {
                for conj in pred.conjuncts() {
                    let Some((col, value)) = conj.as_column_eq_literal() else {
                        continue;
                    };
                    let Some(idx) = schema.column_index(col) else {
                        continue;
                    };
                    if !indexed.contains(&idx) {
                        continue;
                    }
                    if let Some(candidates) = txn.index_lookup(table, idx, value)? {
                        return Ok(candidates
                            .into_iter()
                            .filter(|row| truthy(&eval(&compiled, row)))
                            .collect());
                    }
                }
            }
            txn.scan(table, |row| truthy(&eval(&compiled, row)))
        }
    }
}

/// If every PK column is pinned by `col = literal` in the top-level AND
/// conjunction, build the point-read key.
fn point_key(pred: &Expr, schema: &TableSchema) -> Option<Key> {
    let conjuncts = pred.conjuncts();
    let mut parts: Vec<Option<Value>> = vec![None; schema.pk.len()];
    for c in conjuncts {
        if let Some((col, v)) = c.as_column_eq_literal() {
            if let Some(pos) = schema.pk.iter().position(|&i| schema.columns[i].name == col) {
                parts[pos] = Some(v.clone());
            }
        }
    }
    parts.into_iter().collect::<Option<Vec<Value>>>().map(Key)
}

fn select(db: &Database, txn: &TxnHandle, sel: &Select) -> Result<ExecResult, DbError> {
    let schema =
        db.table_schema(&sel.table).ok_or_else(|| DbError::UnknownTable(sel.table.clone()))?;
    let mut rows = fetch_matching(txn, db, &sel.table, &schema, sel.predicate.as_ref())?;

    // ORDER BY base-table columns.
    if !sel.order_by.is_empty() {
        let keys: Vec<(usize, OrderDir)> = sel
            .order_by
            .iter()
            .map(|(c, d)| {
                schema
                    .column_index(c)
                    .map(|i| (i, *d))
                    .ok_or_else(|| DbError::UnknownColumn(c.clone()))
            })
            .collect::<Result<_, DbError>>()?;
        rows.sort_by(|a, b| {
            for &(i, dir) in &keys {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if dir == OrderDir::Desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(limit) = sel.limit {
        rows.truncate(limit as usize);
    }

    let has_agg = sel.projection.iter().any(|p| matches!(p, SelectItem::Aggregate(..)));
    if has_agg {
        if !sel.projection.iter().all(|p| matches!(p, SelectItem::Aggregate(..))) {
            return Err(DbError::Unsupported(
                "mixing aggregates and scalar expressions requires GROUP BY (unsupported)".into(),
            ));
        }
        let mut columns = Vec::new();
        let mut out = Vec::new();
        for item in &sel.projection {
            let SelectItem::Aggregate(func, arg) = item else { unreachable!() };
            let (name, value) = aggregate(*func, arg, &schema, &rows)?;
            columns.push(name);
            out.push(value);
        }
        return Ok(ExecResult::Rows { columns, rows: vec![out] });
    }

    // Scalar projection.
    let mut columns = Vec::new();
    let mut compiled: Vec<ProjectedItem> = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Star => {
                for c in &schema.columns {
                    columns.push(c.name.clone());
                }
                compiled.push(ProjectedItem::Star);
            }
            SelectItem::Expr(e) => {
                columns.push(match e {
                    Expr::Column(c) => c.clone(),
                    _ => "expr".to_owned(),
                });
                compiled.push(ProjectedItem::Expr(compile(e, &schema)?));
            }
            SelectItem::Aggregate(..) => unreachable!("handled above"),
        }
    }
    let projected: Vec<Row> = rows
        .iter()
        .map(|row| {
            let mut out = Vec::with_capacity(columns.len());
            for item in &compiled {
                match item {
                    ProjectedItem::Star => out.extend(row.iter().cloned()),
                    ProjectedItem::Expr(e) => out.push(eval(e, row)),
                }
            }
            out
        })
        .collect();
    Ok(ExecResult::Rows { columns, rows: projected })
}

enum ProjectedItem {
    Star,
    Expr(CExpr),
}

fn aggregate(
    func: AggFunc,
    arg: &AggArg,
    schema: &TableSchema,
    rows: &[Row],
) -> Result<(String, Value), DbError> {
    let col_idx = match arg {
        AggArg::Star => None,
        AggArg::Column(c) => {
            Some(schema.column_index(c).ok_or_else(|| DbError::UnknownColumn(c.clone()))?)
        }
    };
    let non_null = |rows: &[Row]| -> Vec<Value> {
        let Some(i) = col_idx else { return Vec::new() };
        rows.iter().map(|r| r[i].clone()).filter(|v| !v.is_null()).collect()
    };
    let value = match func {
        AggFunc::Count => match col_idx {
            None => Value::Int(rows.len() as i64),
            Some(_) => Value::Int(non_null(rows).len() as i64),
        },
        AggFunc::Sum => {
            let vs = non_null(rows);
            if vs.is_empty() {
                Value::Null
            } else if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vs.iter().map(|v| v.as_int().unwrap()).sum())
            } else {
                Value::Float(vs.iter().filter_map(Value::as_float).sum())
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut vs = non_null(rows);
            vs.sort_by(Value::total_cmp);
            let v = if func == AggFunc::Min { vs.first() } else { vs.last() };
            v.cloned().unwrap_or(Value::Null)
        }
        AggFunc::Avg => {
            let vs = non_null(rows);
            if vs.is_empty() {
                Value::Null
            } else {
                let sum: f64 = vs.iter().filter_map(Value::as_float).sum();
                Value::Float(sum / vs.len() as f64)
            }
        }
    };
    let name = format!("{func:?}").to_ascii_lowercase();
    Ok((name, value))
}

// ---------------------------------------------------------------------------
// Compiled expressions: column names resolved to indices up front so scan
// predicates evaluate without lookups or allocation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CExpr {
    Literal(Value),
    Column(usize),
    Binary { op: BinOp, left: Box<CExpr>, right: Box<CExpr> },
    Not(Box<CExpr>),
    IsNull(Box<CExpr>, bool),
}

fn compile(e: &Expr, schema: &TableSchema) -> Result<CExpr, DbError> {
    Ok(match e {
        Expr::Literal(v) => CExpr::Literal(v.clone()),
        Expr::Column(c) => {
            CExpr::Column(schema.column_index(c).ok_or_else(|| DbError::UnknownColumn(c.clone()))?)
        }
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile(left, schema)?),
            right: Box::new(compile(right, schema)?),
        },
        Expr::Not(inner) => CExpr::Not(Box::new(compile(inner, schema)?)),
        Expr::IsNull(inner, neg) => CExpr::IsNull(Box::new(compile(inner, schema)?), *neg),
    })
}

/// Evaluate an INSERT value expression (no row context).
fn eval_const(e: &Expr) -> Result<Value, DbError> {
    match e {
        Expr::Column(c) => Err(DbError::Parse(format!("column reference '{c}' in VALUES"))),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval_const(left)?;
            let r = eval_const(right)?;
            Ok(apply_binop(*op, &l, &r))
        }
        Expr::Not(inner) => {
            let v = eval_const(inner)?;
            Ok(bool_value(not3(as_bool3(&v))))
        }
        Expr::IsNull(inner, neg) => {
            let v = eval_const(inner)?;
            Ok(Value::Int((v.is_null() != *neg) as i64))
        }
    }
}

/// Evaluate a compiled expression against a row. Type errors yield NULL
/// (SQL's unknown), never abort the statement.
fn eval(e: &CExpr, row: &Row) -> Value {
    match e {
        CExpr::Literal(v) => v.clone(),
        CExpr::Column(i) => row.get(*i).cloned().unwrap_or(Value::Null),
        CExpr::Binary { op, left, right } => {
            let l = eval(left, row);
            let r = eval(right, row);
            apply_binop(*op, &l, &r)
        }
        CExpr::Not(inner) => bool_value(not3(as_bool3(&eval(inner, row)))),
        CExpr::IsNull(inner, neg) => Value::Int((eval(inner, row).is_null() != *neg) as i64),
    }
}

/// Booleans are represented as `Int(0/1)`; NULL is unknown.
fn bool_value(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Int(b as i64),
        None => Value::Null,
    }
}

fn as_bool3(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        Value::Text(_) => None,
    }
}

fn not3(b: Option<bool>) -> Option<bool> {
    b.map(|x| !x)
}

/// Three-valued truthiness used by WHERE: only definite TRUE passes.
pub(crate) fn truthy(v: &Value) -> bool {
    as_bool3(v) == Some(true)
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    if op.is_comparison() {
        let ord = l.sql_cmp(r);
        return bool_value(ord.map(|o| match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::Neq => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::Le => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::Ge => o != Ordering::Less,
            _ => unreachable!(),
        }));
    }
    match op {
        BinOp::And => {
            // Kleene logic: FALSE AND x = FALSE even when x is NULL.
            let (a, b) = (as_bool3(l), as_bool3(r));
            bool_value(match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        BinOp::Or => {
            let (a, b) = (as_bool3(l), as_bool3(r));
            bool_value(match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => match op {
                    BinOp::Add => Value::Int(a + b),
                    BinOp::Sub => Value::Int(a - b),
                    BinOp::Mul => Value::Int(a * b),
                    BinOp::Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                },
                _ => match (l.as_float(), r.as_float()) {
                    (Some(a), Some(b)) => match op {
                        BinOp::Add => Value::Float(a + b),
                        BinOp::Sub => Value::Float(a - b),
                        BinOp::Mul => Value::Float(a * b),
                        BinOp::Div => {
                            if b == 0.0 {
                                Value::Null
                            } else {
                                Value::Float(a / b)
                            }
                        }
                        _ => unreachable!(),
                    },
                    _ => Value::Null,
                },
            }
        }
        _ => unreachable!(),
    }
}
