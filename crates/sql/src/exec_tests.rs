//! End-to-end tests for the SQL executor.

use crate::exec::{execute_sql, ExecResult};
use sirep_common::DbError;
use sirep_storage::{Database, Value};

fn setup() -> Database {
    let db = Database::in_memory();
    let t = db.begin().unwrap();
    execute_sql(
        &db,
        &t,
        "CREATE TABLE item (i_id INT, i_title TEXT, i_cost FLOAT, i_stock INT, PRIMARY KEY (i_id))",
    )
    .unwrap();
    for (id, title, cost, stock) in [
        (1, "alpha", 10.0, 100),
        (2, "beta", 20.0, 50),
        (3, "gamma", 30.0, 0),
        (4, "delta", 40.0, 25),
    ] {
        execute_sql(
            &db,
            &t,
            &format!("INSERT INTO item VALUES ({id}, '{title}', {cost}, {stock})"),
        )
        .unwrap();
    }
    t.commit().unwrap();
    db
}

fn q(db: &Database, sql: &str) -> ExecResult {
    let t = db.begin().unwrap();
    let r = execute_sql(db, &t, sql).unwrap();
    t.commit().unwrap();
    r
}

#[test]
fn select_star_all_rows() {
    let db = setup();
    let r = q(&db, "SELECT * FROM item");
    assert_eq!(r.rows().len(), 4);
    match &r {
        ExecResult::Rows { columns, .. } => {
            assert_eq!(columns, &["i_id", "i_title", "i_cost", "i_stock"]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn point_read_by_pk() {
    let db = setup();
    let r = q(&db, "SELECT i_title FROM item WHERE i_id = 2");
    assert_eq!(r.rows(), [vec![Value::Text("beta".into())]]);
}

#[test]
fn point_read_with_extra_conjunct_rechecks() {
    let db = setup();
    let r = q(&db, "SELECT i_id FROM item WHERE i_id = 2 AND i_stock > 90");
    assert!(r.rows().is_empty());
    let r = q(&db, "SELECT i_id FROM item WHERE i_id = 1 AND i_stock > 90");
    assert_eq!(r.rows().len(), 1);
}

#[test]
fn range_predicates() {
    let db = setup();
    let r = q(&db, "SELECT i_id FROM item WHERE i_cost >= 20 AND i_cost < 40");
    let ids: Vec<i64> = r.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![2, 3]);
}

#[test]
fn or_and_not() {
    let db = setup();
    let r = q(&db, "SELECT i_id FROM item WHERE i_id = 1 OR i_id = 4");
    assert_eq!(r.rows().len(), 2);
    let r = q(&db, "SELECT i_id FROM item WHERE NOT i_stock = 0");
    assert_eq!(r.rows().len(), 3);
}

#[test]
fn order_by_and_limit() {
    let db = setup();
    let r = q(&db, "SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 2");
    let ids: Vec<i64> = r.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![4, 3]);
}

#[test]
fn projection_expressions() {
    let db = setup();
    let r = q(&db, "SELECT i_cost * 2 FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Float(20.0));
}

#[test]
fn aggregates() {
    let db = setup();
    let r = q(&db, "SELECT COUNT(*) FROM item WHERE i_stock > 0");
    assert_eq!(r.rows()[0][0], Value::Int(3));
    let r = q(&db, "SELECT SUM(i_stock), MIN(i_cost), MAX(i_cost), AVG(i_cost) FROM item");
    assert_eq!(r.rows()[0][0], Value::Int(175));
    assert_eq!(r.rows()[0][1], Value::Float(10.0));
    assert_eq!(r.rows()[0][2], Value::Float(40.0));
    assert_eq!(r.rows()[0][3], Value::Float(25.0));
}

#[test]
fn aggregates_on_empty_set() {
    let db = setup();
    let r = q(&db, "SELECT COUNT(*), SUM(i_stock) FROM item WHERE i_id = 999");
    assert_eq!(r.rows()[0][0], Value::Int(0));
    assert_eq!(r.rows()[0][1], Value::Null);
}

#[test]
fn mixing_aggregates_and_scalars_rejected() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "SELECT i_id, COUNT(*) FROM item");
    assert!(matches!(r, Err(DbError::Unsupported(_))));
}

#[test]
fn update_with_arithmetic() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "UPDATE item SET i_stock = i_stock - 5 WHERE i_id = 1").unwrap();
    assert_eq!(r.affected(), 1);
    t.commit().unwrap();
    let r = q(&db, "SELECT i_stock FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Int(95));
}

#[test]
fn update_multiple_rows() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "UPDATE item SET i_cost = i_cost + 1 WHERE i_cost < 35").unwrap();
    assert_eq!(r.affected(), 3);
    t.commit().unwrap();
    let r = q(&db, "SELECT SUM(i_cost) FROM item");
    assert_eq!(r.rows()[0][0], Value::Float(103.0));
}

#[test]
fn update_no_match_affects_zero() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "UPDATE item SET i_stock = 0 WHERE i_id = 999").unwrap();
    assert_eq!(r.affected(), 0);
    t.commit().unwrap();
}

#[test]
fn delete_rows() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "DELETE FROM item WHERE i_stock = 0").unwrap();
    assert_eq!(r.affected(), 1);
    t.commit().unwrap();
    assert_eq!(q(&db, "SELECT COUNT(*) FROM item").rows()[0][0], Value::Int(3));
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let db = setup();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "INSERT INTO item (i_id, i_title) VALUES (9, 'omega')").unwrap();
    t.commit().unwrap();
    let r = q(&db, "SELECT i_cost FROM item WHERE i_id = 9");
    assert_eq!(r.rows()[0][0], Value::Null);
}

#[test]
fn null_comparison_excludes_rows() {
    let db = setup();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "INSERT INTO item (i_id, i_title) VALUES (9, 'omega')").unwrap();
    t.commit().unwrap();
    // NULL never compares true.
    let r = q(&db, "SELECT i_id FROM item WHERE i_cost > 0");
    assert_eq!(r.rows().len(), 4);
    let r = q(&db, "SELECT i_id FROM item WHERE i_cost IS NULL");
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0][0], Value::Int(9));
    let r = q(&db, "SELECT i_id FROM item WHERE i_cost IS NOT NULL");
    assert_eq!(r.rows().len(), 4);
}

#[test]
fn statement_changes_visible_within_txn_only() {
    let db = setup();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "UPDATE item SET i_stock = 77 WHERE i_id = 1").unwrap();
    let r = execute_sql(&db, &t, "SELECT i_stock FROM item WHERE i_id = 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(77));
    // Other transactions don't see it until commit.
    let r = q(&db, "SELECT i_stock FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Int(100));
    t.commit().unwrap();
    let r = q(&db, "SELECT i_stock FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Int(77));
}

#[test]
fn unknown_column_is_error() {
    let db = setup();
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "SELECT nope FROM item");
    assert!(matches!(r, Err(DbError::UnknownColumn(_))));
    let r = execute_sql(&db, &t, "UPDATE item SET nope = 1");
    assert!(matches!(r, Err(DbError::UnknownColumn(_))));
}

#[test]
fn composite_pk_point_read() {
    let db = Database::in_memory();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "CREATE TABLE ol (o INT, l INT, qty INT, PRIMARY KEY (o, l))").unwrap();
    execute_sql(&db, &t, "INSERT INTO ol VALUES (1, 1, 5)").unwrap();
    execute_sql(&db, &t, "INSERT INTO ol VALUES (1, 2, 7)").unwrap();
    let r = execute_sql(&db, &t, "SELECT qty FROM ol WHERE o = 1 AND l = 2").unwrap();
    assert_eq!(r.rows(), [vec![Value::Int(7)]]);
    // Partial key → scan path, still correct.
    let r = execute_sql(&db, &t, "SELECT qty FROM ol WHERE o = 1").unwrap();
    assert_eq!(r.rows().len(), 2);
    t.commit().unwrap();
}

#[test]
fn division_by_zero_yields_null() {
    let db = setup();
    let r = q(&db, "SELECT i_stock / 0 FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Null);
}

#[test]
fn integer_and_float_division() {
    let db = setup();
    let r = q(&db, "SELECT 7 / 2, 7.0 / 2 FROM item WHERE i_id = 1");
    assert_eq!(r.rows()[0][0], Value::Int(3));
    assert_eq!(r.rows()[0][1], Value::Float(3.5));
}

#[test]
fn text_predicates() {
    let db = setup();
    let r = q(&db, "SELECT i_id FROM item WHERE i_title = 'beta'");
    assert_eq!(r.rows()[0][0], Value::Int(2));
    let r = q(&db, "SELECT i_id FROM item WHERE i_title > 'b' ORDER BY i_title");
    assert_eq!(r.rows().len(), 3); // beta, delta, gamma
}
