//! Tests for secondary-index planning and execution.

use crate::exec::execute_sql;
use proptest::prelude::*;
use sirep_common::DbError;
use sirep_storage::{Database, Value};

fn setup(indexed: bool) -> Database {
    let db = Database::in_memory();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "CREATE TABLE item (id INT, grp INT, val INT, PRIMARY KEY (id))").unwrap();
    for id in 0..100 {
        execute_sql(
            &db,
            &t,
            &format!("INSERT INTO item VALUES ({id}, {grp}, {val})", grp = id % 10, val = id * 2),
        )
        .unwrap();
    }
    t.commit().unwrap();
    if indexed {
        let t = db.begin().unwrap();
        execute_sql(&db, &t, "CREATE INDEX ON item (grp)").unwrap();
        t.commit().unwrap();
    }
    db
}

fn grp_ids(db: &Database, grp: i64) -> Vec<i64> {
    let t = db.begin().unwrap();
    let r = execute_sql(db, &t, &format!("SELECT id FROM item WHERE grp = {grp}")).unwrap();
    let out = r.rows().iter().map(|row| row[0].as_int().unwrap()).collect();
    t.commit().unwrap();
    out
}

#[test]
fn index_lookup_matches_scan() {
    let plain = setup(false);
    let indexed = setup(true);
    for grp in 0..10 {
        assert_eq!(grp_ids(&plain, grp), grp_ids(&indexed, grp), "grp {grp}");
    }
    // Missing value.
    assert!(grp_ids(&indexed, 99).is_empty());
}

#[test]
fn index_sees_committed_updates() {
    let db = setup(true);
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "UPDATE item SET grp = 55 WHERE id = 7").unwrap();
    t.commit().unwrap();
    assert_eq!(grp_ids(&db, 55), vec![7]);
    // The old posting is rechecked away.
    assert!(!grp_ids(&db, 7).contains(&7));
}

#[test]
fn index_respects_snapshots() {
    let db = setup(true);
    let reader = db.begin().unwrap();
    {
        let w = db.begin().unwrap();
        execute_sql(&db, &w, "UPDATE item SET grp = 77 WHERE id = 3").unwrap();
        w.commit().unwrap();
    }
    // The reader's snapshot predates the move: id 3 still in grp 3.
    let r = execute_sql(&db, &reader, "SELECT id FROM item WHERE grp = 3").unwrap();
    let ids: Vec<i64> = r.rows().iter().map(|row| row[0].as_int().unwrap()).collect();
    assert!(ids.contains(&3), "snapshot must still see id 3 in grp 3: {ids:?}");
    let r = execute_sql(&db, &reader, "SELECT id FROM item WHERE grp = 77").unwrap();
    assert!(r.rows().is_empty(), "snapshot must not see the later move");
    reader.commit().unwrap();
}

#[test]
fn index_sees_own_uncommitted_writes() {
    let db = setup(true);
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "INSERT INTO item VALUES (500, 42, 0)").unwrap();
    execute_sql(&db, &t, "UPDATE item SET grp = 42 WHERE id = 1").unwrap();
    let r = execute_sql(&db, &t, "SELECT id FROM item WHERE grp = 42").unwrap();
    let ids: Vec<i64> = r.rows().iter().map(|row| row[0].as_int().unwrap()).collect();
    assert!(ids.contains(&500), "own insert invisible through index: {ids:?}");
    assert!(ids.contains(&1), "own update invisible through index: {ids:?}");
    t.abort(sirep_common::AbortReason::UserRequested);
}

#[test]
fn index_with_deletes() {
    let db = setup(true);
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "DELETE FROM item WHERE grp = 4").unwrap();
    t.commit().unwrap();
    assert!(grp_ids(&db, 4).is_empty());
}

#[test]
fn duplicate_index_rejected_and_unknown_column() {
    let db = setup(true);
    let t = db.begin().unwrap();
    assert!(matches!(
        execute_sql(&db, &t, "CREATE INDEX ON item (grp)"),
        Err(DbError::Internal(_))
    ));
    assert!(matches!(
        execute_sql(&db, &t, "CREATE INDEX ON item (nope)"),
        Err(DbError::UnknownColumn(_))
    ));
}

#[test]
fn extra_conjuncts_recheck_on_index_path() {
    let db = setup(true);
    let t = db.begin().unwrap();
    let r = execute_sql(&db, &t, "SELECT id FROM item WHERE grp = 5 AND val > 100").unwrap();
    for row in r.rows() {
        let id = row[0].as_int().unwrap();
        assert_eq!(id % 10, 5);
        assert!(id * 2 > 100);
    }
    t.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Random mutation batches: the indexed plan and the scan plan agree on
    /// every group afterwards.
    #[test]
    fn indexed_and_scan_plans_agree_after_mutations(
        ops in prop::collection::vec((0i64..100, 0i64..12, any::<bool>()), 1..40)
    ) {
        let indexed = setup(true);
        let plain = setup(false);
        for db in [&indexed, &plain] {
            let t = db.begin().unwrap();
            for (id, grp, delete) in &ops {
                if *delete {
                    execute_sql(db, &t, &format!("DELETE FROM item WHERE id = {id}")).unwrap();
                } else {
                    execute_sql(db, &t, &format!("UPDATE item SET grp = {grp} WHERE id = {id}"))
                        .unwrap();
                }
            }
            t.commit().unwrap();
        }
        for grp in 0..12 {
            prop_assert_eq!(grp_ids(&indexed, grp), grp_ids(&plain, grp), "grp {}", grp);
        }
    }
}

#[test]
fn index_recovery_via_fork_loses_nothing() {
    // fork_latest flattens versions; an index rebuilt on the fork matches.
    let db = setup(true);
    {
        let t = db.begin().unwrap();
        execute_sql(&db, &t, "UPDATE item SET grp = 3 WHERE id = 50").unwrap();
        t.commit().unwrap();
    }
    let fork = db.fork_latest(sirep_storage::CostModel::free());
    fork.create_index("item", "grp").unwrap();
    for grp in 0..10 {
        let t = fork.begin().unwrap();
        let r = execute_sql(&fork, &t, &format!("SELECT id FROM item WHERE grp = {grp}")).unwrap();
        let fork_ids: Vec<i64> = r.rows().iter().map(|row| row[0].as_int().unwrap()).collect();
        t.commit().unwrap();
        assert_eq!(fork_ids, grp_ids(&db, grp), "grp {grp}");
    }
    assert_eq!(fork.table_len("item"), db.table_len("item"));
}

#[test]
fn value_display_roundtrip_for_floats() {
    // Guard: Float display via {:?} stays parseable (proptest relies on it).
    let db = Database::in_memory();
    let t = db.begin().unwrap();
    execute_sql(&db, &t, "CREATE TABLE f (a INT, b FLOAT, PRIMARY KEY (a))").unwrap();
    execute_sql(&db, &t, "INSERT INTO f VALUES (1, 0.125)").unwrap();
    let r = execute_sql(&db, &t, "SELECT b FROM f WHERE a = 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Float(0.125));
    t.commit().unwrap();
}
