//! SQL tokenizer.
//!
//! Keywords are case-insensitive; identifiers are lower-cased (PostgreSQL
//! folding). String literals use single quotes with `''` as the escape.

use sirep_common::DbError;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, lower-cased.
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, DbError> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Sym(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Sym(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Sym(Sym::Semicolon));
                i += 1;
            }
            '*' => {
                out.push(Token::Sym(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Sym(Sym::Plus));
                i += 1;
            }
            '-' => {
                // `--` line comment
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Sym(Sym::Minus));
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Sym(Sym::Slash));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym(Sym::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(Sym::Neq));
                    i += 2;
                } else {
                    return Err(DbError::Parse("unexpected '!'".into()));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Sym(Sym::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Sym(Sym::Neq));
                    i += 2;
                }
                _ => {
                    out.push(Token::Sym(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Sym(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string".into())),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8: copy the full char.
                            let ch_len = utf8_len(b);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len])
                                    .map_err(|_| DbError::Parse("bad utf8".into()))?,
                            );
                            i += ch_len;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '0'..='9' => i += 1,
                        '.' if !is_float => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 =
                        text.parse().map_err(|_| DbError::Parse(format!("bad number: {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 =
                        text.parse().map_err(|_| DbError::Parse(format!("bad number: {text}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(sql[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT * FROM item WHERE i_id = 3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("select".into()),
                Token::Sym(Sym::Star),
                Token::Word("from".into()),
                Token::Word("item".into()),
                Token::Word("where".into()),
                Token::Word("i_id".into()),
                Token::Sym(Sym::Eq),
                Token::Int(3),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 .5").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Float(2.5), Token::Float(0.5)]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= <> != =").unwrap();
        let syms: Vec<Sym> = toks
            .into_iter()
            .map(|t| match t {
                Token::Sym(s) => s,
                other => panic!("not a symbol: {other:?}"),
            })
            .collect();
        assert_eq!(syms, vec![Sym::Lt, Sym::Le, Sym::Gt, Sym::Ge, Sym::Neq, Sym::Neq, Sym::Eq]);
    }

    #[test]
    fn line_comments_skipped() {
        let toks = tokenize("select -- comment\n 1").unwrap();
        assert_eq!(toks, vec![Token::Word("select".into()), Token::Int(1)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn keywords_fold_to_lowercase() {
        let toks = tokenize("SeLeCt FooBar").unwrap();
        assert_eq!(toks, vec![Token::Word("select".into()), Token::Word("foobar".into())]);
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'héllo — wörld'").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo — wörld".into())]);
    }
}
