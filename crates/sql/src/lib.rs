//! # sirep-sql
//!
//! A small SQL layer over [`sirep_storage`]: lexer, recursive-descent
//! parser, a light planner (point reads when the primary key is pinned) and
//! an executor.
//!
//! The paper's middleware is *transparent*: clients speak SQL over a
//! standard JDBC interface, and the middleware "only sees the SQL statements
//! but does not know the records which are going to be accessed before
//! execution" (§1). That property is what makes optimistic, writeset-based
//! concurrency control attractive — and it only holds if our client API
//! really does accept SQL strings, hence this crate.
//!
//! ```
//! use sirep_storage::Database;
//! use sirep_sql::execute_sql;
//!
//! let db = Database::in_memory();
//! let t = db.begin().unwrap();
//! execute_sql(&db, &t, "CREATE TABLE item (i_id INT, i_cost FLOAT, PRIMARY KEY (i_id))").unwrap();
//! execute_sql(&db, &t, "INSERT INTO item VALUES (1, 9.99)").unwrap();
//! execute_sql(&db, &t, "UPDATE item SET i_cost = i_cost * 2 WHERE i_id = 1").unwrap();
//! let r = execute_sql(&db, &t, "SELECT i_cost FROM item WHERE i_id = 1").unwrap();
//! assert_eq!(r.rows()[0][0], sirep_storage::Value::Float(19.98));
//! t.commit().unwrap();
//! ```

pub mod ast;
pub mod display;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{AggArg, AggFunc, BinOp, Expr, OrderDir, Select, SelectItem, Statement};
pub use exec::{execute, execute_sql, ExecResult};
pub use parser::parse;

#[cfg(test)]
mod exec_tests;
#[cfg(test)]
mod index_tests;
#[cfg(test)]
mod proptests;
