//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};
use sirep_common::DbError;
use sirep_storage::{ColumnType, Value};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semicolon); // optional
    if !p.at_end() {
        return Err(DbError::Parse(format!("trailing tokens after statement: {}", p.peek_desc())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => t.to_string(),
            None => "<end>".into(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume `word` (already lower-case) if next; return whether consumed.
    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), DbError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected '{word}', found {}", self.peek_desc())))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<(), DbError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {s:?}, found {}", self.peek_desc())))
        }
    }

    fn identifier(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Word(w)) if !is_reserved(&w) => Ok(w),
            Some(t) => Err(DbError::Parse(format!("expected identifier, found {t}"))),
            None => Err(DbError::Parse("expected identifier, found end".into())),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.eat_word("create") {
            self.create_table()
        } else if self.eat_word("insert") {
            self.insert()
        } else if self.eat_word("update") {
            self.update()
        } else if self.eat_word("delete") {
            self.delete()
        } else if self.eat_word("select") {
            Ok(Statement::Select(self.select()?))
        } else {
            Err(DbError::Parse(format!("expected a statement, found {}", self.peek_desc())))
        }
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        if self.eat_word("index") {
            self.expect_word("on")?;
            let table = self.identifier()?;
            self.expect_sym(Sym::LParen)?;
            let column = self.identifier()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Statement::CreateIndex { table, column });
        }
        self.expect_word("table")?;
        let name = self.identifier()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut pk = Vec::new();
        loop {
            if self.eat_word("primary") {
                self.expect_word("key")?;
                self.expect_sym(Sym::LParen)?;
                loop {
                    pk.push(self.identifier()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
            } else {
                let col = self.identifier()?;
                let ty = match self.next() {
                    Some(Token::Word(w)) => match w.as_str() {
                        "int" | "integer" | "bigint" => ColumnType::Int,
                        "float" | "real" | "double" | "numeric" | "decimal" => ColumnType::Float,
                        "text" | "varchar" | "char" => ColumnType::Text,
                        other => {
                            return Err(DbError::Parse(format!("unknown type: {other}")));
                        }
                    },
                    t => {
                        return Err(DbError::Parse(format!("expected type, found {t:?}")));
                    }
                };
                // Optional length like VARCHAR(40).
                if self.eat_sym(Sym::LParen) {
                    match self.next() {
                        Some(Token::Int(_)) => {}
                        t => return Err(DbError::Parse(format!("expected length, found {t:?}"))),
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                columns.push((col, ty));
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        if pk.is_empty() {
            return Err(DbError::Parse(format!("table {name} needs PRIMARY KEY (...)")));
        }
        Ok(Statement::CreateTable { name, columns, pk })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_word("into")?;
        let table = self.identifier()?;
        let columns = if self.eat_sym(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_word("values")?;
        self.expect_sym(Sym::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.expr()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::Insert { table, columns, values })
    }

    fn update(&mut self) -> Result<Statement, DbError> {
        let table = self.identifier()?;
        self.expect_word("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_sym(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_word("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, predicate })
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_word("from")?;
        let table = self.identifier()?;
        let predicate = if self.eat_word("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> Result<Select, DbError> {
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_word("from")?;
        let table = self.identifier()?;
        let predicate = if self.eat_word("where") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_word("order") {
            self.expect_word("by")?;
            loop {
                let col = self.identifier()?;
                let dir = if self.eat_word("desc") {
                    OrderDir::Desc
                } else {
                    self.eat_word("asc");
                    OrderDir::Asc
                };
                order_by.push((col, dir));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_word("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                t => return Err(DbError::Parse(format!("expected LIMIT count, found {t:?}"))),
            }
        } else {
            None
        };
        Ok(Select { projection, table, predicate, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let Some(Token::Word(w)) = self.peek() {
            let func = match w.as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                // Only treat as aggregate when followed by '('.
                if matches!(self.tokens.get(self.pos + 1), Some(Token::Sym(Sym::LParen))) {
                    self.pos += 2; // word + lparen
                    let arg = if self.eat_sym(Sym::Star) {
                        AggArg::Star
                    } else {
                        AggArg::Column(self.identifier()?)
                    };
                    self.expect_sym(Sym::RParen)?;
                    return Ok(SelectItem::Aggregate(func, arg));
                }
            }
        }
        Ok(SelectItem::Expr(self.expr()?))
    }

    // Expression grammar (precedence climbing):
    //   expr     := or
    //   or       := and (OR and)*
    //   and      := not (AND not)*
    //   not      := NOT not | cmp
    //   cmp      := add ((=|<>|<|<=|>|>=) add)? | add IS [NOT] NULL
    //   add      := mul ((+|-) mul)*
    //   mul      := atom ((*|/) atom)*
    //   atom     := literal | column | ( expr ) | - atom
    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.and_expr()?;
        while self.eat_word("or") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.not_expr()?;
        while self.eat_word("and") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_word("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, DbError> {
        let left = self.add_expr()?;
        if self.eat_word("is") {
            let negated = self.eat_word("not");
            self.expect_word("null")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::Neq)) => Some(BinOp::Neq),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::bin(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => BinOp::Add,
                Some(Token::Sym(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => BinOp::Mul,
                Some(Token::Sym(Sym::Slash)) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Expr, DbError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Sym(Sym::Minus)) => {
                let inner = self.atom()?;
                Ok(Expr::bin(BinOp::Sub, Expr::lit(0), inner))
            }
            Some(Token::Sym(Sym::LParen)) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) if w == "null" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Word(w)) if !is_reserved(&w) => Ok(Expr::Column(w)),
            t => Err(DbError::Parse(format!("expected expression, found {t:?}"))),
        }
    }
}

fn is_reserved(w: &str) -> bool {
    matches!(
        w,
        "select"
            | "insert"
            | "update"
            | "delete"
            | "create"
            | "table"
            | "from"
            | "where"
            | "set"
            | "into"
            | "values"
            | "and"
            | "or"
            | "not"
            | "order"
            | "by"
            | "limit"
            | "primary"
            | "key"
            | "is"
            | "null"
            | "index"
            | "on"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s = parse(
            "CREATE TABLE item (i_id INT, i_title VARCHAR(60), i_cost FLOAT, PRIMARY KEY (i_id))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, pk } => {
                assert_eq!(name, "item");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1], ("i_title".into(), ColumnType::Text));
                assert_eq!(pk, vec!["i_id"]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_composite_pk() {
        let s = parse("CREATE TABLE ol (a INT, b INT, q INT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { pk, .. } => assert_eq!(pk, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_positional_and_named() {
        let s = parse("INSERT INTO t VALUES (1, 'x', 2.5)").unwrap();
        match s {
            Statement::Insert { columns, values, .. } => {
                assert!(columns.is_none());
                assert_eq!(values.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("INSERT INTO t (a, c) VALUES (1, 'x')").unwrap();
        match s {
            Statement::Insert { columns, .. } => {
                assert_eq!(columns.unwrap(), vec!["a", "c"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_with_arithmetic() {
        let s = parse("UPDATE stock SET qty = qty - 3, price = price * 1.1 WHERE id = 7").unwrap();
        match s {
            Statement::Update { table, sets, predicate } => {
                assert_eq!(table, "stock");
                assert_eq!(sets.len(), 2);
                assert!(predicate.unwrap().as_column_eq_literal().is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let s = parse(
            "SELECT i_id, i_cost FROM item WHERE i_cost > 5 AND i_id <> 3 ORDER BY i_cost DESC, i_id LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection.len(), 2);
                assert_eq!(sel.order_by.len(), 2);
                assert_eq!(sel.order_by[0].1, OrderDir::Desc);
                assert_eq!(sel.order_by[1].1, OrderDir::Asc);
                assert_eq!(sel.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_aggregates() {
        let s = parse("SELECT COUNT(*), SUM(qty), AVG(price) FROM stock WHERE qty > 0").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection.len(), 3);
                assert!(matches!(
                    sel.projection[0],
                    SelectItem::Aggregate(AggFunc::Count, AggArg::Star)
                ));
                assert!(matches!(
                    sel.projection[1],
                    SelectItem::Aggregate(AggFunc::Sum, AggArg::Column(_))
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_is_null_and_not() {
        let s = parse("SELECT * FROM t WHERE a IS NOT NULL AND NOT b = 2").unwrap();
        match s {
            Statement::Select(sel) => {
                let conj = sel.predicate.as_ref().unwrap().conjuncts().len();
                assert_eq!(conj, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_or_precedence() {
        // a = 1 OR b = 2 AND c = 3  →  a=1 OR (b=2 AND c=3)
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s {
            Statement::Select(sel) => match sel.predicate.unwrap() {
                Expr::Binary { op: BinOp::Or, right, .. } => {
                    assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_numbers() {
        let s = parse("INSERT INTO t VALUES (-5)").unwrap();
        match s {
            Statement::Insert { values, .. } => {
                assert!(matches!(&values[0], Expr::Binary { op: BinOp::Sub, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_parse_errors() {
        assert!(matches!(parse("SELEC * FROM t"), Err(DbError::Parse(_))));
        assert!(matches!(parse("SELECT * FROM t WHERE"), Err(DbError::Parse(_))));
        assert!(matches!(parse("SELECT * FROM t extra junk"), Err(DbError::Parse(_))));
        assert!(matches!(parse("CREATE TABLE t (a INT)"), Err(DbError::Parse(_))));
        assert!(matches!(parse("DELETE t"), Err(DbError::Parse(_))));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("DELETE FROM t;").is_ok());
    }
}
