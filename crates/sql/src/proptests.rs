//! Property-based tests for the SQL layer: random ASTs roundtrip through
//! print → parse, and random WHERE predicates evaluate identically on the
//! fast point-read path and the scan path.

use crate::ast::*;
use crate::exec::execute;
use crate::parse;
use proptest::prelude::*;
use sirep_storage::{Database, Value};

fn ident() -> impl Strategy<Value = String> {
    // Avoid reserved words; keep identifiers short and lowercase like the
    // lexer folds them.
    "[a-e][a-z0-9_]{0,6}".prop_filter("reserved", |s| {
        !matches!(s.as_str(), "and" | "by" | "create" | "delete" | "desc" | "asc" | "avg" | "count")
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (0u32..1000u32).prop_map(|x| Expr::Literal(Value::Float(f64::from(x) / 8.0))),
        "[a-z ]{0,6}".prop_map(|s| Expr::Literal(Value::Text(s))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), ident().prop_map(Expr::Column)];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Eq),
                    Just(BinOp::Neq),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner, any::<bool>()).prop_map(|(e, n)| Expr::IsNull(Box::new(e), n)),
        ]
    })
}

fn statement() -> impl Strategy<Value = Statement> {
    let select = (
        prop::collection::vec(
            prop_oneof![Just(SelectItem::Star), expr().prop_map(SelectItem::Expr),],
            1..4,
        ),
        ident(),
        prop::option::of(expr()),
        prop::collection::vec(
            (ident(), prop_oneof![Just(OrderDir::Asc), Just(OrderDir::Desc)]),
            0..3,
        ),
        prop::option::of(0u64..100),
    )
        .prop_map(|(projection, table, predicate, order_by, limit)| {
            Statement::Select(Select { projection, table, predicate, order_by, limit })
        });
    let update =
        (ident(), prop::collection::vec((ident(), expr()), 1..4), prop::option::of(expr()))
            .prop_map(|(table, sets, predicate)| Statement::Update { table, sets, predicate });
    let delete = (ident(), prop::option::of(expr()))
        .prop_map(|(table, predicate)| Statement::Delete { table, predicate });
    let insert = (
        ident(),
        prop::option::of(prop::collection::vec(ident(), 1..4)),
        prop::collection::vec(literal(), 1..4),
    )
        .prop_map(|(table, columns, values)| Statement::Insert { table, columns, values });
    prop_oneof![select, update, delete, insert]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// print → parse reproduces the AST exactly.
    #[test]
    fn ast_roundtrips_through_sql_text(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(stmt, reparsed, "text was `{}`", printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// A WHERE clause that pins the primary key must return the same rows
    /// through the point-read plan as through a full scan.
    #[test]
    fn point_plan_agrees_with_scan_plan(
        rows in prop::collection::btree_map(0i64..50, 0i64..100, 1..30),
        probe in 0i64..50,
        bound in 0i64..100,
    ) {
        let db = Database::in_memory();
        let setup = db.begin().unwrap();
        execute(&db, &setup, &parse("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))").unwrap())
            .unwrap();
        for (k, v) in &rows {
            execute(&db, &setup, &parse(&format!("INSERT INTO t VALUES ({k}, {v})")).unwrap())
                .unwrap();
        }
        setup.commit().unwrap();

        let t = db.begin().unwrap();
        // Point path: `k = probe AND v < bound` (planner pins k).
        let point = execute(
            &db,
            &t,
            &parse(&format!("SELECT k, v FROM t WHERE k = {probe} AND v < {bound}")).unwrap(),
        )
        .unwrap();
        // Scan path: defeat the planner with an arithmetic identity.
        let scan = execute(
            &db,
            &t,
            &parse(&format!(
                "SELECT k, v FROM t WHERE k + 0 = {probe} AND v < {bound}"
            ))
            .unwrap(),
        )
        .unwrap();
        prop_assert_eq!(point.rows(), scan.rows());
        t.commit().unwrap();
    }
}
