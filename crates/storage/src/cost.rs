//! The service-time cost model.
//!
//! The paper's measurements ran on 2005-era hardware against on-disk
//! PostgreSQL databases; our engine is in-memory and would execute the same
//! workloads ~1000x faster, flattening every response-time curve. The cost
//! model injects configurable *model-millisecond* service times at the same
//! points where the real system spent time — statement processing, row I/O,
//! commit (log force) — so the queueing behaviour that shapes Figures 5–7
//! re-emerges. All sleeps are routed through one [`TimeScale`] so a whole
//! experiment can be uniformly compressed.
//!
//! §6.3 of the paper measures that applying a writeset costs "only around
//! 20 % of the time it takes to execute the entire transaction"; in this
//! model that ratio emerges from `apply_write_ms` vs. `stmt_overhead_ms +
//! write_ms` (SQL processing is skipped when applying a writeset).

use sirep_common::{Semaphore, TimeScale};

/// Per-operation service times, in model milliseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub scale: TimeScale,
    /// Bounded service capacity of one replica: at most this many costed
    /// operations execute concurrently (think CPU + disk channels).
    /// `0` means unbounded (no queueing — unit-test mode). Each
    /// [`Database`](crate::Database) gets its **own** gate built from this
    /// number, so cloning a `CostModel` across replicas does not share
    /// capacity.
    pub servers: usize,
    /// Transaction begin (snapshot setup).
    pub begin_ms: f64,
    /// Point read of one row by key.
    pub read_ms: f64,
    /// Per-row cost of a scan (predicate evaluation + page touch).
    pub scan_row_ms: f64,
    /// In-place write of one row through the SQL path (index lookup, page
    /// write, WAL record).
    pub write_ms: f64,
    /// Write of one row when applying a replicated writeset (no SQL
    /// processing, no read — just install the after-image).
    pub apply_write_ms: f64,
    /// Per-transaction CPU share of a commit (log record construction,
    /// status flip). Charged once per transaction even inside a group
    /// commit.
    pub commit_entry_ms: f64,
    /// The log force itself (disk flush). Charged once per commit *batch* —
    /// this is the saving group commit exists to exploit: n transactions
    /// share one flush.
    pub commit_flush_ms: f64,
    /// Per-statement SQL overhead (parse/plan/dispatch); charged by the SQL
    /// layer, not the engine.
    pub stmt_overhead_ms: f64,
}

impl CostModel {
    /// Zero-cost model for unit tests: every operation is instantaneous.
    pub fn free() -> CostModel {
        CostModel {
            scale: TimeScale::REAL_TIME,
            servers: 0,
            begin_ms: 0.0,
            read_ms: 0.0,
            scan_row_ms: 0.0,
            write_ms: 0.0,
            apply_write_ms: 0.0,
            commit_entry_ms: 0.0,
            commit_flush_ms: 0.0,
            stmt_overhead_ms: 0.0,
        }
    }

    /// True when every cost is zero (lets the engine skip sleep calls).
    pub fn is_free(&self) -> bool {
        self.begin_ms == 0.0
            && self.read_ms == 0.0
            && self.scan_row_ms == 0.0
            && self.write_ms == 0.0
            && self.apply_write_ms == 0.0
            && self.commit_entry_ms == 0.0
            && self.commit_flush_ms == 0.0
            && self.stmt_overhead_ms == 0.0
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::free()
    }
}

/// One replica's service gate: the cost model plus this replica's bounded
/// capacity. Charging an operation means occupying one of the replica's
/// servers for the operation's service time — which is what turns the
/// injected costs into genuine queueing under load.
#[derive(Debug)]
pub struct CostGate {
    model: CostModel,
    servers: Option<Semaphore>,
    /// When set, charges are skipped entirely — used for bulk loading
    /// (initial population is not part of any measured experiment).
    suspended: std::sync::atomic::AtomicBool,
}

impl CostGate {
    pub fn new(model: CostModel) -> CostGate {
        let servers = if model.servers > 0 { Some(Semaphore::new(model.servers)) } else { None };
        CostGate { model, servers, suspended: std::sync::atomic::AtomicBool::new(false) }
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    pub fn is_free(&self) -> bool {
        self.model.is_free()
    }

    /// Suspend/resume cost charging (bulk load).
    pub fn set_suspended(&self, on: bool) {
        self.suspended.store(on, std::sync::atomic::Ordering::Release);
    }

    fn charge(&self, ms: f64) {
        if ms <= 0.0 || self.suspended.load(std::sync::atomic::Ordering::Acquire) {
            return;
        }
        let _permit = self.servers.as_ref().map(|s| s.acquire());
        self.model.scale.sleep(ms);
    }

    pub fn begin(&self) {
        self.charge(self.model.begin_ms);
    }

    pub fn read(&self) {
        self.charge(self.model.read_ms);
    }

    pub fn scan(&self, rows_visited: usize) {
        self.charge(self.model.scan_row_ms * rows_visited as f64);
    }

    pub fn write(&self) {
        self.charge(self.model.write_ms);
    }

    pub fn apply_write(&self) {
        self.charge(self.model.apply_write_ms);
    }

    /// Commit of a single transaction: one entry's CPU share plus the
    /// log force.
    pub fn commit(&self) {
        self.charge(self.model.commit_entry_ms + self.model.commit_flush_ms);
    }

    /// Group commit of `n` transactions: n entry shares but a single
    /// shared log force.
    pub fn commit_batch(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.charge(self.model.commit_entry_ms * n as f64 + self.model.commit_flush_ms);
    }

    pub fn stmt_overhead(&self) {
        self.charge(self.model.stmt_overhead_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn free_model_is_detected_and_fast() {
        let c = CostGate::new(CostModel::free());
        assert!(c.is_free());
        let start = Instant::now();
        for _ in 0..1000 {
            c.read();
            c.write();
            c.commit();
        }
        assert!(start.elapsed().as_millis() < 100);
    }

    #[test]
    fn charges_scale_with_time_scale() {
        let mut m = CostModel::free();
        m.scale = TimeScale::compressed(100.0); // 1 model ms = 10 µs
        m.read_ms = 10.0; // → 100 µs wall
        assert!(!m.is_free());
        let c = CostGate::new(m);
        let start = Instant::now();
        for _ in 0..10 {
            c.read();
        }
        let elapsed = start.elapsed();
        // Sleeps are mean-accurate (±~40 µs each), not exact.
        assert!(elapsed.as_micros() >= 500, "too fast: {elapsed:?}");
        assert!(elapsed.as_millis() < 100, "too slow: {elapsed:?}");
    }

    #[test]
    fn scan_charges_per_row() {
        let mut m = CostModel::free();
        m.scale = TimeScale::compressed(1000.0);
        m.scan_row_ms = 1.0;
        let c = CostGate::new(m);
        let start = Instant::now();
        c.scan(500); // 500 model ms → 500 µs wall (mean-accurate)
        assert!(start.elapsed().as_micros() >= 300);
    }

    #[test]
    fn bounded_servers_serialize_charges() {
        let mut m = CostModel::free();
        m.scale = TimeScale::REAL_TIME;
        m.write_ms = 5.0;
        m.servers = 1;
        let c = std::sync::Arc::new(CostGate::new(m));
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || c.write()));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 writes x 5 ms through 1 server >= 20 ms wall.
        assert!(start.elapsed().as_millis() >= 18, "no queueing: {:?}", start.elapsed());
    }
}
