//! The database engine: snapshot-isolated transactions over versioned
//! tables, with PostgreSQL's lock-based write-conflict behaviour.
//!
//! One [`Database`] instance models one database replica (`R^k`). The
//! middleware crates drive it through [`TxnHandle`]s:
//!
//! ```text
//! begin → read/scan/insert/update/delete ... → writeset() → commit/abort
//!                                  (remote)  → apply_ws_entry ... → commit
//! ```
//!
//! Semantics reproduced from §4 of the paper:
//!
//! - reads never block: they see the newest version committed at or before
//!   the transaction's snapshot (plus the transaction's own writes);
//! - a write acquires the tuple's exclusive lock, **then** performs the
//!   version check: if a concurrent transaction's committed version is
//!   newer than the writer's snapshot, the writer aborts immediately
//!   (first-updater-wins). A writer blocked behind a holder that commits
//!   will acquire the lock and *then* fail the version check — exactly the
//!   PostgreSQL behaviour the paper builds on;
//! - wait-for cycles abort the requester with [`AbortReason::Deadlock`];
//! - the writeset can be extracted *before* commit (the paper's patched
//!   PostgreSQL) and applied at another replica through the normal write
//!   path, so remote transactions block and deadlock like local ones.

use crate::cost::{CostGate, CostModel};
use crate::index::SecondaryIndex;
use crate::lock::{LockId, LockManager};
use crate::schema::TableSchema;
use crate::value::{Key, Row};
use crate::version::{CommitTs, Version, VersionChain};
use crate::writeset::{WriteSet, WsEntry, WsOp};
use parking_lot::{Mutex, RwLock};
use sirep_common::{AbortReason, DbError, TxnId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Transaction lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    Committed(CommitTs),
    Aborted(AbortReason),
}

#[derive(Debug)]
struct TxnState {
    id: TxnId,
    snapshot: CommitTs,
    status: Mutex<Status>,
    buffer: Mutex<WriteSet>,
    locks: Mutex<Vec<LockId>>,
    doomed: AtomicBool,
    /// Keys of rows this transaction has read (only filled when the
    /// database has read tracking enabled — used by the 1-copy-SI checker).
    read_keys: Mutex<Vec<(Arc<str>, Key)>>,
}

struct Table {
    schema: TableSchema,
    name: Arc<str>,
    rows: RwLock<BTreeMap<Key, VersionChain>>,
    /// Secondary equality indexes (candidate postings; readers recheck).
    indexes: RwLock<Vec<SecondaryIndex>>,
}

struct DbInner {
    tables: RwLock<HashMap<Arc<str>, Arc<Table>>>,
    locks: LockManager,
    txns: Mutex<HashMap<TxnId, Arc<TxnState>>>,
    /// Serializes begin and commit so snapshots are consistent cuts.
    commit_mutex: Mutex<()>,
    last_committed: AtomicU64,
    next_txn: AtomicU64,
    /// Active snapshot multiset (snapshot ts → refcount) for version GC.
    active_snapshots: Mutex<BTreeMap<u64, u32>>,
    cost: CostGate,
    closed: AtomicBool,
    /// When set, transactions record the keys of rows they read so the
    /// replication layer can reconstruct readsets for verification.
    track_reads: AtomicBool,
}

/// One database replica.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    pub fn new(cost: CostModel) -> Database {
        Database {
            inner: Arc::new(DbInner {
                tables: RwLock::new(HashMap::new()),
                locks: LockManager::new(),
                txns: Mutex::new(HashMap::new()),
                commit_mutex: Mutex::new(()),
                last_committed: AtomicU64::new(0),
                next_txn: AtomicU64::new(1),
                active_snapshots: Mutex::new(BTreeMap::new()),
                cost: CostGate::new(cost),
                closed: AtomicBool::new(false),
                track_reads: AtomicBool::new(false),
            }),
        }
    }

    /// An engine with zero service times (unit tests).
    pub fn in_memory() -> Database {
        Database::new(CostModel::free())
    }

    /// Enable/disable read-key tracking (off by default; costs one lock +
    /// key clone per read when on).
    pub fn set_track_reads(&self, on: bool) {
        self.inner.track_reads.store(on, Ordering::Release);
    }

    pub fn cost_model(&self) -> &CostGate {
        &self.inner.cost
    }

    /// Create a table. Not transactional (DDL is out of the paper's scope;
    /// schemas are installed identically at every replica before the run).
    pub fn create_table(&self, schema: TableSchema) -> Result<(), DbError> {
        let name: Arc<str> = Arc::from(schema.name.as_str());
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&name) {
            return Err(DbError::Internal(format!("table {name} already exists")));
        }
        tables.insert(
            name.clone(),
            Arc::new(Table {
                schema,
                name,
                rows: RwLock::new(BTreeMap::new()),
                indexes: RwLock::new(Vec::new()),
            }),
        );
        Ok(())
    }

    /// Create a secondary equality index on `column` of `table`, built
    /// from the current committed state. Like the schemas, indexes must be
    /// created identically at every replica before the run (or during
    /// recovery's state transfer, which copies committed data the index is
    /// rebuilt from).
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), DbError> {
        let t = self.inner.table(table)?;
        let col = t
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn(column.to_owned()))?;
        // Build under the commit mutex so no installs race the backfill.
        let _g = self.inner.commit_mutex.lock();
        let mut idx = SecondaryIndex::new(col);
        let rows = t.rows.read();
        for (key, chain) in rows.iter() {
            for v in chain.versions() {
                if let Some(row) = &v.row {
                    idx.insert(row[col].clone(), key.clone());
                }
            }
        }
        drop(rows);
        let mut indexes = t.indexes.write();
        if indexes.iter().any(|i| i.column == col) {
            return Err(DbError::Internal(format!("index on {table}.{column} already exists")));
        }
        indexes.push(idx);
        Ok(())
    }

    /// Column positions of `table` that have a secondary index (planner
    /// input).
    pub fn indexed_columns(&self, table: &str) -> Vec<usize> {
        let Ok(t) = self.inner.table(table) else {
            return Vec::new();
        };
        let cols = t.indexes.read().iter().map(|i| i.column).collect();
        cols
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    pub fn table_schema(&self, name: &str) -> Option<TableSchema> {
        self.inner.tables.read().get(name).map(|t| t.schema.clone())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().map(ToString::to_string).collect()
    }

    /// The commit timestamp of the most recently committed update
    /// transaction.
    pub fn last_committed(&self) -> CommitTs {
        CommitTs(self.inner.last_committed.load(Ordering::Acquire))
    }

    /// Begin a transaction. The snapshot is taken atomically with respect
    /// to commits (the paper's `dbmutex` in SRCA step I.1).
    pub fn begin(&self) -> Result<TxnHandle, DbError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(DbError::Aborted(AbortReason::Shutdown));
        }
        self.inner.cost.begin();
        let _g = self.inner.commit_mutex.lock();
        let snapshot = self.last_committed();
        let id = TxnId::new(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(TxnState {
            id,
            snapshot,
            status: Mutex::new(Status::Active),
            buffer: Mutex::new(WriteSet::new()),
            locks: Mutex::new(Vec::new()),
            doomed: AtomicBool::new(false),
            read_keys: Mutex::new(Vec::new()),
        });
        self.inner.txns.lock().insert(id, Arc::clone(&state));
        *self.inner.active_snapshots.lock().entry(snapshot.0).or_insert(0) += 1;
        Ok(TxnHandle { db: Arc::clone(&self.inner), state })
    }

    /// Number of live (visible at the latest snapshot) rows in a table.
    pub fn table_len(&self, name: &str) -> usize {
        let snapshot = self.last_committed();
        let tables = self.inner.tables.read();
        let Some(t) = tables.get(name) else { return 0 };
        let n = t.rows.read().values().filter(|c| c.visible_row(snapshot).is_some()).count();
        n
    }

    /// Kill a transaction from outside (crash simulation): wakes it if
    /// blocked inside the lock manager and dooms all further operations.
    pub fn kill(&self, txn: TxnId) {
        // Hoisted so the txns guard drops before the store (clippy
        // significant_drop_in_scrutinee: if-let scrutinee temporaries
        // live for the whole block in edition 2021).
        let state = self.inner.txns.lock().get(&txn).cloned();
        if let Some(state) = state {
            state.doomed.store(true, Ordering::Release);
        }
        self.inner.locks.doom(txn);
    }

    /// Crash the replica: refuse new transactions and kill all active ones.
    pub fn crash(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let ids: Vec<TxnId> = self.inner.txns.lock().keys().copied().collect();
        for id in ids {
            self.kill(id);
        }
    }

    /// Whether the replica has been crashed/shut down.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Number of transactions currently active (incl. blocked ones).
    pub fn active_txns(&self) -> usize {
        self.inner.txns.lock().len()
    }

    /// Fork a new database containing this replica's *committed* state as
    /// of now: same schemas, the latest visible version of every row,
    /// flattened into a single initial version. Taken under the commit
    /// mutex, so the copy is a consistent cut (used for online recovery —
    /// the paper's §8: a joining replica receives a state transfer and
    /// catches up from logged writesets).
    pub fn fork_latest(&self, cost: CostModel) -> Database {
        let fork = Database::new(cost);
        let _g = self.inner.commit_mutex.lock();
        let snapshot = self.last_committed();
        let tables = self.inner.tables.read();
        for t in tables.values() {
            fork.create_table(t.schema.clone()).expect("fresh database");
        }
        {
            let fork_tables = fork.inner.tables.read();
            for (name, t) in tables.iter() {
                let src = t.rows.read();
                let dst_table = &fork_tables[name];
                let mut dst = dst_table.rows.write();
                for (key, chain) in src.iter() {
                    if let Some(row) = chain.visible_row(snapshot) {
                        let mut c = VersionChain::new();
                        c.install(Version { commit_ts: CommitTs(1), row: Some(Arc::clone(row)) });
                        dst.insert(key.clone(), c);
                    }
                }
            }
        }
        fork.inner.last_committed.store(1, Ordering::Release);
        fork
    }

    /// Test/inspection: total stored versions in a table (live + old).
    pub fn stored_versions(&self, name: &str) -> usize {
        let tables = self.inner.tables.read();
        let Some(t) = tables.get(name) else { return 0 };
        let n = t.rows.read().values().map(VersionChain::len).sum();
        n
    }
}

impl DbInner {
    fn table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        self.tables.read().get(name).cloned().ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    fn min_active_snapshot(&self) -> CommitTs {
        let snaps = self.active_snapshots.lock();
        match snaps.keys().next() {
            Some(&s) => CommitTs(s),
            None => CommitTs(self.last_committed.load(Ordering::Acquire)),
        }
    }

    fn release_snapshot(&self, s: CommitTs) {
        let mut snaps = self.active_snapshots.lock();
        if let Some(count) = snaps.get_mut(&s.0) {
            *count -= 1;
            if *count == 0 {
                snaps.remove(&s.0);
            }
        }
    }
}

/// A handle to one active transaction. Dropping an unterminated handle
/// aborts the transaction (like closing a JDBC connection mid-transaction).
pub struct TxnHandle {
    db: Arc<DbInner>,
    state: Arc<TxnState>,
}

/// How a write entered the system, for cost accounting and error shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    Insert,
    Update,
    Delete,
    Apply,
}

impl TxnHandle {
    pub fn id(&self) -> TxnId {
        self.state.id
    }

    pub fn snapshot(&self) -> CommitTs {
        self.state.snapshot
    }

    fn check_active(&self) -> Result<(), DbError> {
        if self.state.doomed.load(Ordering::Acquire) {
            self.terminate(AbortReason::Shutdown);
            return Err(DbError::Aborted(AbortReason::Shutdown));
        }
        // Copy out so the status guard drops before the return path.
        let status = *self.state.status.lock();
        match status {
            Status::Active => Ok(()),
            Status::Aborted(r) => Err(DbError::Aborted(r)),
            Status::Committed(_) => Err(DbError::NoSuchTransaction),
        }
    }

    /// Point read by primary key. Sees own writes, else the snapshot.
    pub fn read(&self, table: &str, key: &Key) -> Result<Option<Row>, DbError> {
        self.check_active()?;
        let t = self.db.table(table)?;
        self.db.cost.read();
        if let Some(op) = self.state.buffer.lock().get(table, key) {
            return Ok(match op {
                WsOp::Put(row) => Some(row.clone()),
                WsOp::Delete => None,
            });
        }
        let result = {
            let rows = t.rows.read();
            rows.get(key).and_then(|c| c.visible_row(self.state.snapshot)).map(|r| (**r).clone())
        };
        if result.is_some() && self.db.track_reads.load(Ordering::Relaxed) {
            self.state.read_keys.lock().push((t.name.clone(), key.clone()));
        }
        Ok(result)
    }

    /// Snapshot scan with a row predicate; includes own writes. Rows are
    /// returned in primary-key order.
    pub fn scan(
        &self,
        table: &str,
        mut pred: impl FnMut(&Row) -> bool,
    ) -> Result<Vec<Row>, DbError> {
        self.check_active()?;
        let t = self.db.table(table)?;
        let buffer = self.state.buffer.lock();
        let rows = t.rows.read();
        let track = self.db.track_reads.load(Ordering::Relaxed);
        let mut tracked: Vec<(Arc<str>, Key)> = Vec::new();
        let mut out: Vec<(Key, Row)> = Vec::new();
        let mut visited = 0usize;
        for (key, chain) in rows.iter() {
            visited += 1;
            let mut from_snapshot = false;
            let effective: Option<Row> = match buffer.get(table, key) {
                Some(WsOp::Put(r)) => Some(r.clone()),
                Some(WsOp::Delete) => None,
                None => {
                    from_snapshot = true;
                    chain.visible_row(self.state.snapshot).map(|r| (**r).clone())
                }
            };
            if let Some(row) = effective {
                if pred(&row) {
                    if track && from_snapshot {
                        tracked.push((t.name.clone(), key.clone()));
                    }
                    out.push((key.clone(), row));
                }
            }
        }
        // Own inserts for keys not yet present in the table map.
        for e in buffer.entries() {
            if &*e.table == table && !rows.contains_key(&e.key) {
                if let WsOp::Put(row) = &e.op {
                    if pred(row) {
                        out.push((e.key.clone(), row.clone()));
                    }
                }
            }
        }
        drop(rows);
        drop(buffer);
        if !tracked.is_empty() {
            self.state.read_keys.lock().extend(tracked);
        }
        self.db.cost.scan(visited);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out.into_iter().map(|(_, r)| r).collect())
    }

    /// Equality lookup through a secondary index: fetch candidate keys from
    /// the index, read each through normal snapshot visibility, recheck the
    /// value, and merge the transaction's own writes. Returns `None` when
    /// no index exists on `column` (the caller falls back to a scan). Rows
    /// come back in primary-key order, like [`TxnHandle::scan`].
    pub fn index_lookup(
        &self,
        table: &str,
        column: usize,
        value: &crate::value::Value,
    ) -> Result<Option<Vec<Row>>, DbError> {
        self.check_active()?;
        let t = self.db.table(table)?;
        let candidates: Vec<Key> = {
            let indexes = t.indexes.read();
            let Some(idx) = indexes.iter().find(|i| i.column == column) else {
                return Ok(None);
            };
            idx.candidates(value).cloned().collect()
        };
        // Index probe + per-candidate heap fetch.
        self.db.cost.read();
        let buffer = self.state.buffer.lock();
        let rows = t.rows.read();
        let mut out: Vec<(Key, Row)> = Vec::new();
        for key in candidates {
            let effective: Option<Row> = match buffer.get(table, &key) {
                Some(WsOp::Put(r)) => Some(r.clone()),
                Some(WsOp::Delete) => None,
                None => rows
                    .get(&key)
                    .and_then(|c| c.visible_row(self.state.snapshot))
                    .map(|r| (**r).clone()),
            };
            if let Some(row) = effective {
                // Recheck: the index is a candidate set, not the truth.
                if &row[column] == value {
                    out.push((key, row));
                }
            }
        }
        // Own inserts/updates not yet committed are invisible to the index;
        // merge matching buffered rows for keys not already collected.
        for e in buffer.entries() {
            if &*e.table == table {
                if let WsOp::Put(row) = &e.op {
                    if &row[column] == value && !out.iter().any(|(k, _)| k == &e.key) {
                        out.push((e.key.clone(), row.clone()));
                    }
                }
            }
        }
        drop(rows);
        drop(buffer);
        if self.db.track_reads.load(Ordering::Relaxed) {
            let mut tracked = self.state.read_keys.lock();
            for (k, _) in &out {
                tracked.push((t.name.clone(), k.clone()));
            }
        }
        self.db.cost.scan(out.len());
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Some(out.into_iter().map(|(_, r)| r).collect()))
    }

    /// The shared write path: lock → version check → kind-specific checks →
    /// buffer the after-image. On a conflict the whole transaction aborts
    /// (PostgreSQL semantics: an error inside a transaction dooms it).
    fn write_internal(
        &self,
        table: &str,
        key: Key,
        op: WsOp,
        kind: WriteKind,
    ) -> Result<(), DbError> {
        self.check_active()?;
        let t = self.db.table(table)?;
        if let WsOp::Put(row) = &op {
            t.schema.check_row(row)?;
            if t.schema.key_of(row) != key {
                return Err(DbError::Unsupported(
                    "updating primary-key columns is not supported".into(),
                ));
            }
        }
        let lock_id: LockId = (t.name.clone(), key.clone());
        let already_ours = self.state.buffer.lock().contains(table, &key);
        if !already_ours {
            // Acquire the exclusive tuple lock (blocks behind holders).
            if let Err(reason) = self.db.locks.acquire(self.state.id, &lock_id) {
                self.terminate(reason);
                return Err(DbError::Aborted(reason));
            }
            self.state.locks.lock().push(lock_id);
            // Version check (first-updater-wins): a committed version newer
            // than our snapshot means a concurrent writer won.
            let conflict = {
                let rows = t.rows.read();
                rows.get(&key)
                    .and_then(|c| c.newest())
                    .is_some_and(|v| v.commit_ts > self.state.snapshot)
            };
            if conflict {
                self.terminate(AbortReason::SerializationFailure);
                return Err(DbError::Aborted(AbortReason::SerializationFailure));
            }
        }
        // Kind-specific visibility checks against snapshot + own buffer.
        match kind {
            WriteKind::Insert => {
                let exists_in_buffer =
                    matches!(self.state.buffer.lock().get(table, &key), Some(WsOp::Put(_)));
                let exists_committed = !exists_in_buffer
                    && self.state.buffer.lock().get(table, &key).is_none()
                    && t.rows
                        .read()
                        .get(&key)
                        .and_then(|c| c.visible_row(self.state.snapshot))
                        .is_some();
                if exists_in_buffer || exists_committed {
                    // A duplicate key is a statement error, not a txn abort,
                    // in PostgreSQL only under savepoints; without them the
                    // txn is doomed. We doom it (no savepoints here).
                    self.terminate(AbortReason::SerializationFailure);
                    return Err(DbError::DuplicateKey(format!("{table}{key}")));
                }
            }
            WriteKind::Update | WriteKind::Delete | WriteKind::Apply => {}
        }
        match kind {
            WriteKind::Apply => self.db.cost.apply_write(),
            _ => self.db.cost.write(),
        }
        self.state.buffer.lock().push(t.name.clone(), key, op);
        Ok(())
    }

    /// Insert a full row; fails on a visible duplicate key.
    pub fn insert(&self, table: &str, row: Row) -> Result<(), DbError> {
        let t = self.db.table(table)?;
        let key = t.schema.key_of(&row);
        self.write_internal(table, key, WsOp::Put(row), WriteKind::Insert)
    }

    /// Write a full-row after-image for `key` (used by UPDATE execution,
    /// which reads the old row, computes the new image, and stores it).
    pub fn update_key(&self, table: &str, key: Key, row: Row) -> Result<(), DbError> {
        self.write_internal(table, key, WsOp::Put(row), WriteKind::Update)
    }

    /// Delete the tuple with `key` (no-op at commit if it never existed).
    pub fn delete_key(&self, table: &str, key: Key) -> Result<(), DbError> {
        self.write_internal(table, key, WsOp::Delete, WriteKind::Delete)
    }

    /// Apply one entry of a replicated writeset: a blind write through the
    /// normal lock + version-check path, charged at the cheaper
    /// writeset-application rate (§6.3: ~20 % of full execution).
    pub fn apply_ws_entry(&self, entry: &WsEntry) -> Result<(), DbError> {
        self.write_internal(&entry.table, entry.key.clone(), entry.op.clone(), WriteKind::Apply)
    }

    /// Apply a whole writeset.
    pub fn apply_writeset(&self, ws: &WriteSet) -> Result<(), DbError> {
        for e in ws.entries() {
            self.apply_ws_entry(e)?;
        }
        Ok(())
    }

    /// Extract the writeset accumulated so far — the paper's pre-commit
    /// `getwriteset()`.
    pub fn writeset(&self) -> WriteSet {
        self.state.buffer.lock().clone()
    }

    /// Whether this transaction has performed any writes.
    pub fn is_readonly(&self) -> bool {
        self.state.buffer.lock().is_empty()
    }

    /// Keys this transaction has read from the snapshot (only filled when
    /// [`Database::set_track_reads`] is enabled).
    pub fn read_keys(&self) -> Vec<(Arc<str>, Key)> {
        self.state.read_keys.lock().clone()
    }

    /// Commit. Read-only transactions take a fast path that consumes no
    /// commit timestamp. Returns the commit timestamp (for read-only
    /// transactions, the snapshot).
    pub fn commit(self) -> Result<CommitTs, DbError> {
        if !self.is_readonly() {
            // Log force, modelled outside the commit mutex (group commit).
            self.db.cost.commit();
        }
        self.commit_quiet()
    }

    /// Commit without charging the commit service time — for coordinators
    /// that charge it themselves before entering a critical section (the
    /// replication middleware must hold its queue lock across the final
    /// commit step but must not sleep under it).
    pub fn commit_quiet(self) -> Result<CommitTs, DbError> {
        self.check_active()?;
        let buffer = std::mem::take(&mut *self.state.buffer.lock());
        if buffer.is_empty() {
            self.finish(Status::Committed(self.state.snapshot));
            return Ok(self.state.snapshot);
        }
        let ts = {
            let _g = self.db.commit_mutex.lock();
            let ts = CommitTs(self.db.last_committed.load(Ordering::Acquire)).next();
            let min_snap = self.db.min_active_snapshot();
            let tables = self.db.tables.read();
            for e in buffer.entries() {
                let t = tables.get(&e.table).expect("writeset table vanished");
                let mut rows = t.rows.write();
                let chain = rows.entry(e.key.clone()).or_default();
                chain.install(Version {
                    commit_ts: ts,
                    row: match &e.op {
                        WsOp::Put(r) => Some(Arc::new(r.clone())),
                        WsOp::Delete => None,
                    },
                });
                let dropped = chain.prune(min_snap);
                let mut indexes = t.indexes.write();
                if !indexes.is_empty() {
                    for idx in indexes.iter_mut() {
                        if let WsOp::Put(r) = &e.op {
                            idx.insert(r[idx.column].clone(), e.key.clone());
                        }
                        // Physically drop postings whose value no longer
                        // appears in any retained version of this key.
                        let stale: Vec<_> = dropped
                            .iter()
                            .filter_map(|v| v.row.as_ref())
                            .map(|r| r[idx.column].clone())
                            .filter(|val| {
                                !chain
                                    .versions()
                                    .iter()
                                    .any(|v| v.row.as_ref().is_some_and(|r| &r[idx.column] == val))
                            })
                            .collect();
                        idx.remove_stale(&stale, &e.key);
                    }
                }
            }
            self.db.last_committed.store(ts.0, Ordering::Release);
            ts
        };
        self.finish(Status::Committed(ts));
        Ok(ts)
    }

    /// Abort with an explicit reason (user rollback, validation failure).
    pub fn abort(self, reason: AbortReason) {
        self.terminate(reason);
    }

    /// Idempotent terminal transition; releases locks and the snapshot.
    fn terminate(&self, reason: AbortReason) {
        let mut status = self.state.status.lock();
        if *status != Status::Active {
            return;
        }
        *status = Status::Aborted(reason);
        drop(status);
        *self.state.buffer.lock() = WriteSet::new();
        self.cleanup();
    }

    fn finish(&self, status: Status) {
        *self.state.status.lock() = status;
        self.cleanup();
    }

    fn cleanup(&self) {
        let locks = std::mem::take(&mut *self.state.locks.lock());
        self.db.locks.release_all(self.state.id, &locks);
        self.db.release_snapshot(self.state.snapshot);
        self.db.txns.lock().remove(&self.state.id);
    }
}

impl Drop for TxnHandle {
    fn drop(&mut self) {
        // Safe to call unconditionally: terminate() is a no-op unless the
        // transaction is still active.
        self.terminate(AbortReason::UserRequested);
    }
}

impl std::fmt::Debug for TxnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxnHandle({}, snap={:?})", self.state.id, self.state.snapshot)
    }
}
