//! Behavioural tests for the engine: snapshot isolation semantics,
//! first-updater-wins, blocking, deadlocks, writeset extraction/application.

use crate::*;
use sirep_common::{AbortReason, DbError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn db_with_kv() -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "kv",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
            &["k"],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn put(db: &Database, k: i64, v: i64) {
    let t = db.begin().unwrap();
    t.insert("kv", vec![Value::Int(k), Value::Int(v)]).unwrap();
    t.commit().unwrap();
}

fn get(db: &Database, k: i64) -> Option<i64> {
    let t = db.begin().unwrap();
    let r = t.read("kv", &Key::single(k)).unwrap().map(|row| row[1].as_int().unwrap());
    t.commit().unwrap();
    r
}

#[test]
fn insert_read_roundtrip() {
    let db = db_with_kv();
    put(&db, 1, 10);
    assert_eq!(get(&db, 1), Some(10));
    assert_eq!(get(&db, 2), None);
    assert_eq!(db.table_len("kv"), 1);
}

#[test]
fn snapshot_reads_ignore_later_commits() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let reader = db.begin().unwrap();
    // Writer commits a new version after the reader's snapshot.
    let w = db.begin().unwrap();
    w.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(20)]).unwrap();
    w.commit().unwrap();
    // Reader still sees the old version (reads from its snapshot).
    let row = reader.read("kv", &Key::single(1)).unwrap().unwrap();
    assert_eq!(row[1], Value::Int(10));
    reader.commit().unwrap();
    assert_eq!(get(&db, 1), Some(20));
}

#[test]
fn snapshot_does_not_see_concurrent_insert() {
    let db = db_with_kv();
    let reader = db.begin().unwrap();
    put(&db, 5, 50);
    assert_eq!(reader.read("kv", &Key::single(5)).unwrap(), None);
    assert!(reader.scan("kv", |_| true).unwrap().is_empty());
    reader.commit().unwrap();
}

#[test]
fn read_your_own_writes_and_deletes() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    t.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(99)]).unwrap();
    assert_eq!(t.read("kv", &Key::single(1)).unwrap().unwrap()[1], Value::Int(99));
    t.delete_key("kv", Key::single(1)).unwrap();
    assert_eq!(t.read("kv", &Key::single(1)).unwrap(), None);
    t.commit().unwrap();
    assert_eq!(get(&db, 1), None);
}

#[test]
fn scan_sees_own_inserts_in_key_order() {
    let db = db_with_kv();
    put(&db, 2, 20);
    let t = db.begin().unwrap();
    t.insert("kv", vec![Value::Int(1), Value::Int(10)]).unwrap();
    t.insert("kv", vec![Value::Int(3), Value::Int(30)]).unwrap();
    let rows = t.scan("kv", |_| true).unwrap();
    let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(keys, vec![1, 2, 3]);
    t.commit().unwrap();
}

#[test]
fn first_updater_wins_immediate_abort() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();
    t1.commit().unwrap();
    // t2 is concurrent with t1 and t1 committed a newer version → abort.
    let err = t2.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)]).unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::SerializationFailure));
    assert_eq!(get(&db, 1), Some(11));
}

#[test]
fn aborted_txn_rejects_further_operations() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();
    t1.commit().unwrap();
    let _ = t2.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)]);
    // Any further statement fails with the same abort reason.
    let err = t2.read("kv", &Key::single(1)).unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::SerializationFailure));
    let err = t2.commit().unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::SerializationFailure));
}

#[test]
fn blocked_writer_aborts_when_holder_commits() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t1 = db.begin().unwrap();
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();

    let db2 = db.clone();
    let blocked = Arc::new(AtomicBool::new(true));
    let blocked2 = Arc::clone(&blocked);
    let h = thread::spawn(move || {
        let t2 = db2.begin().unwrap();
        // Blocks behind t1's lock; after t1 commits, fails the version check.
        let r = t2.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)]);
        blocked2.store(false, Ordering::SeqCst);
        r
    });
    thread::sleep(Duration::from_millis(50));
    assert!(blocked.load(Ordering::SeqCst), "writer must block while lock held");
    t1.commit().unwrap();
    let r = h.join().unwrap();
    assert_eq!(r, Err(DbError::Aborted(AbortReason::SerializationFailure)));
    assert_eq!(get(&db, 1), Some(11));
}

#[test]
fn blocked_writer_proceeds_when_holder_aborts() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t1 = db.begin().unwrap();
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let t2 = db2.begin().unwrap();
        t2.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)])?;
        t2.commit().map(|_| ())
    });
    thread::sleep(Duration::from_millis(30));
    t1.abort(AbortReason::UserRequested);
    assert_eq!(h.join().unwrap(), Ok(()));
    assert_eq!(get(&db, 1), Some(12));
}

#[test]
fn write_write_deadlock_detected() {
    let db = db_with_kv();
    put(&db, 1, 10);
    put(&db, 2, 20);
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();
    t2.update_key("kv", Key::single(2), vec![Value::Int(2), Value::Int(21)]).unwrap();

    let h = thread::spawn(move || {
        // t2 blocks on key 1 (held by t1).
        let r = t2.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)]);
        match r {
            Ok(()) => t2.commit().map(|_| ()),
            Err(e) => Err(e),
        }
    });
    thread::sleep(Duration::from_millis(50));
    // t1 requests key 2 → cycle → t1 aborted as the closer.
    let r = t1.update_key("kv", Key::single(2), vec![Value::Int(2), Value::Int(22)]);
    assert_eq!(r, Err(DbError::Aborted(AbortReason::Deadlock)));
    // t2 then acquires key 1; version check passes because t1 aborted.
    assert_eq!(h.join().unwrap(), Ok(()));
    assert_eq!(get(&db, 1), Some(12));
    assert_eq!(get(&db, 2), Some(21));
}

#[test]
fn si_allows_write_skew() {
    // The classic SI anomaly must be allowed (SI, not serializability):
    // both transactions read both keys, each writes a different one.
    let db = db_with_kv();
    put(&db, 1, 50);
    put(&db, 2, 50);
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    let sum1: i64 = [1, 2]
        .iter()
        .map(|&k| t1.read("kv", &Key::single(k)).unwrap().unwrap()[1].as_int().unwrap())
        .sum();
    let sum2: i64 = [1, 2]
        .iter()
        .map(|&k| t2.read("kv", &Key::single(k)).unwrap().unwrap()[1].as_int().unwrap())
        .sum();
    assert_eq!(sum1, 100);
    assert_eq!(sum2, 100);
    t1.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(sum1 - 100)]).unwrap();
    t2.update_key("kv", Key::single(2), vec![Value::Int(2), Value::Int(sum2 - 100)]).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap(); // no w/w conflict → both commit under SI
    assert_eq!(get(&db, 1), Some(0));
    assert_eq!(get(&db, 2), Some(0));
}

#[test]
fn duplicate_key_insert_rejected() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    let err = t.insert("kv", vec![Value::Int(1), Value::Int(99)]).unwrap_err();
    assert!(matches!(err, DbError::DuplicateKey(_)));
}

#[test]
fn insert_after_delete_in_same_txn() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    t.delete_key("kv", Key::single(1)).unwrap();
    t.insert("kv", vec![Value::Int(1), Value::Int(77)]).unwrap();
    t.commit().unwrap();
    assert_eq!(get(&db, 1), Some(77));
}

#[test]
fn concurrent_inserts_same_key_conflict() {
    let db = db_with_kv();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    t1.insert("kv", vec![Value::Int(9), Value::Int(1)]).unwrap();

    let h = thread::spawn(move || t2.insert("kv", vec![Value::Int(9), Value::Int(2)]));
    thread::sleep(Duration::from_millis(30));
    t1.commit().unwrap();
    let r = h.join().unwrap();
    assert_eq!(r, Err(DbError::Aborted(AbortReason::SerializationFailure)));
    assert_eq!(get(&db, 9), Some(1));
}

#[test]
fn writeset_extraction_pre_commit() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    t.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();
    t.insert("kv", vec![Value::Int(2), Value::Int(20)]).unwrap();
    t.delete_key("kv", Key::single(1)).unwrap();
    let ws = t.writeset(); // before commit!
    assert_eq!(ws.len(), 2); // key 1 collapsed to delete, key 2 put
    assert!(ws.contains("kv", &Key::single(1)));
    assert!(ws.contains("kv", &Key::single(2)));
    t.commit().unwrap();
}

#[test]
fn writeset_apply_reproduces_state() {
    let src = db_with_kv();
    let dst = db_with_kv();
    put(&src, 1, 10);
    put(&dst, 1, 10);

    let t = src.begin().unwrap();
    t.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(42)]).unwrap();
    t.insert("kv", vec![Value::Int(2), Value::Int(7)]).unwrap();
    let ws = t.writeset();
    t.commit().unwrap();

    let r = dst.begin().unwrap();
    r.apply_writeset(&ws).unwrap();
    r.commit().unwrap();

    for k in [1, 2] {
        assert_eq!(get(&src, k), get(&dst, k), "divergence at key {k}");
    }
}

#[test]
fn remote_apply_blocks_behind_local_writer() {
    // §4.2 first case: a remote writeset is blocked by a local transaction
    // holding the tuple lock, and proceeds once the local aborts.
    let db = db_with_kv();
    put(&db, 1, 10);
    let local = db.begin().unwrap();
    local.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();

    let mut ws = WriteSet::new();
    ws.push(Arc::from("kv"), Key::single(1), WsOp::Put(vec![Value::Int(1), Value::Int(99)]));

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let remote = db2.begin().unwrap();
        remote.apply_writeset(&ws)?;
        remote.commit().map(|_| ())
    });
    thread::sleep(Duration::from_millis(30));
    local.abort(AbortReason::ValidationFailure); // middleware aborts it
    assert_eq!(h.join().unwrap(), Ok(()));
    assert_eq!(get(&db, 1), Some(99));
}

#[test]
fn drop_aborts_transaction() {
    let db = db_with_kv();
    {
        let t = db.begin().unwrap();
        t.insert("kv", vec![Value::Int(1), Value::Int(10)]).unwrap();
        // dropped without commit
    }
    assert_eq!(get(&db, 1), None);
    assert_eq!(db.active_txns(), 0);
}

#[test]
fn kill_wakes_blocked_transaction() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let holder = db.begin().unwrap();
    holder.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(11)]).unwrap();

    let db2 = db.clone();
    let h = thread::spawn(move || {
        let victim = db2.begin().unwrap();
        let id = victim.id();
        let r = victim.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(12)]);
        (id, r)
    });
    thread::sleep(Duration::from_millis(30));
    // Find and kill the blocked txn.
    let ids: Vec<_> = (1..=10).map(sirep_common::TxnId::new).collect();
    for id in ids {
        if id != holder.id() {
            db.kill(id);
        }
    }
    let (_, r) = h.join().unwrap();
    assert_eq!(r, Err(DbError::Aborted(AbortReason::Shutdown)));
    holder.commit().unwrap();
}

#[test]
fn crash_closes_database() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    db.crash();
    assert!(db.is_closed());
    assert!(db.begin().is_err());
    let err = t.read("kv", &Key::single(1)).unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::Shutdown));
}

#[test]
fn version_gc_prunes_dead_versions() {
    let db = db_with_kv();
    put(&db, 1, 0);
    for v in 1..50 {
        let t = db.begin().unwrap();
        t.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(v)]).unwrap();
        t.commit().unwrap();
    }
    // With no concurrent readers, chains stay short.
    assert!(db.stored_versions("kv") <= 2, "versions: {}", db.stored_versions("kv"));
}

#[test]
fn version_gc_respects_active_snapshots() {
    let db = db_with_kv();
    put(&db, 1, 0);
    let reader = db.begin().unwrap(); // pins the old snapshot
    for v in 1..10 {
        let t = db.begin().unwrap();
        t.update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(v)]).unwrap();
        t.commit().unwrap();
    }
    // The reader's version must survive.
    assert_eq!(reader.read("kv", &Key::single(1)).unwrap().unwrap()[1], Value::Int(0));
    reader.commit().unwrap();
}

#[test]
fn unknown_table_and_type_errors_do_not_abort() {
    let db = db_with_kv();
    let t = db.begin().unwrap();
    assert!(matches!(t.read("nope", &Key::single(1)), Err(DbError::UnknownTable(_))));
    let bad = t.insert("kv", vec![Value::Text("x".into()), Value::Int(1)]);
    assert!(matches!(bad, Err(DbError::TypeMismatch { .. })));
    // Transaction still usable.
    t.insert("kv", vec![Value::Int(1), Value::Int(1)]).unwrap();
    t.commit().unwrap();
}

#[test]
fn update_pk_rejected() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let t = db.begin().unwrap();
    let r = t.update_key("kv", Key::single(1), vec![Value::Int(2), Value::Int(10)]);
    assert!(matches!(r, Err(DbError::Unsupported(_))));
}

#[test]
fn readonly_commit_consumes_no_timestamp() {
    let db = db_with_kv();
    put(&db, 1, 10);
    let before = db.last_committed();
    let t = db.begin().unwrap();
    let _ = t.read("kv", &Key::single(1)).unwrap();
    assert!(t.is_readonly());
    t.commit().unwrap();
    assert_eq!(db.last_committed(), before);
}

#[test]
fn many_concurrent_disjoint_writers() {
    let db = db_with_kv();
    let mut handles = Vec::new();
    for i in 0..8i64 {
        let db2 = db.clone();
        handles.push(thread::spawn(move || {
            for j in 0..50i64 {
                let t = db2.begin().unwrap();
                t.insert("kv", vec![Value::Int(i * 1000 + j), Value::Int(j)]).unwrap();
                t.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.table_len("kv"), 400);
    assert_eq!(db.last_committed(), CommitTs(400));
}

#[test]
fn contended_counter_conflicts_resolve_consistently() {
    // Many threads increment one counter; aborted attempts retry. The final
    // value must equal the number of successful commits.
    let db = db_with_kv();
    put(&db, 1, 0);
    let success = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db2 = db.clone();
        let success2 = Arc::clone(&success);
        handles.push(thread::spawn(move || {
            for _ in 0..25 {
                loop {
                    let t = db2.begin().unwrap();
                    let cur = t.read("kv", &Key::single(1)).unwrap().unwrap()[1].as_int().unwrap();
                    let r = t
                        .update_key("kv", Key::single(1), vec![Value::Int(1), Value::Int(cur + 1)])
                        .and_then(|_| t.commit().map(|_| ()));
                    if r.is_ok() {
                        success2.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(success.load(Ordering::SeqCst), 100);
    assert_eq!(get(&db, 1), Some(100));
}
