//! Secondary (non-unique) equality indexes.
//!
//! The paper ran its large-database experiment **without** indexes and
//! notes the resulting PostgreSQL performance "is rather limited" (§6.2) —
//! queries there are full scans, which is exactly what makes the
//! centralized system saturate at ~4 tps. This module supplies the thing
//! being withheld, so the ablation bench can show the gap.
//!
//! Design: a multi-version-safe *candidate* index. The index maps a column
//! value to the set of primary keys that have carried that value in any
//! version that might still be visible. Lookups therefore **recheck**: the
//! caller fetches each candidate row through normal snapshot visibility and
//! re-applies the predicate (the same heap-recheck discipline PostgreSQL
//! uses). Stale entries — keys whose visible row no longer matches — are
//! skipped by the recheck and physically removed when the engine prunes
//! their versions away.
//!
//! Maintenance happens at commit install time (committed data only;
//! uncommitted writes live in the transaction's buffer, which readers merge
//! separately), so the index never exposes dirty data and needs no locks
//! beyond the table's.

use crate::value::{Key, Value};
use std::collections::{BTreeSet, HashMap};

/// One secondary index over a single column.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    /// Column position in the table schema.
    pub column: usize,
    /// value → candidate primary keys (superset of the truth; recheck!).
    entries: HashMap<Value, BTreeSet<Key>>,
}

impl SecondaryIndex {
    pub fn new(column: usize) -> SecondaryIndex {
        SecondaryIndex { column, entries: HashMap::new() }
    }

    /// Record that `key`'s row carries `value` in some (new) version.
    pub fn insert(&mut self, value: Value, key: Key) {
        if value.is_null() {
            return; // NULL never matches an equality predicate
        }
        self.entries.entry(value).or_default().insert(key);
    }

    /// Candidate keys for `value` (must be rechecked against visibility).
    pub fn candidates(&self, value: &Value) -> impl Iterator<Item = &Key> + '_ {
        self.entries.get(value).into_iter().flatten()
    }

    /// Drop a key from every posting it appears in whose value is in
    /// `stale_values` (called when version pruning discards old images).
    pub fn remove_stale(&mut self, stale_values: &[Value], key: &Key) {
        for v in stale_values {
            if let Some(set) = self.entries.get_mut(v) {
                set.remove(key);
                if set.is_empty() {
                    self.entries.remove(v);
                }
            }
        }
    }

    /// Total candidate entries (tests / introspection).
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeSet::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: i64) -> Key {
        Key::single(n)
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = SecondaryIndex::new(1);
        idx.insert(Value::Int(5), k(1));
        idx.insert(Value::Int(5), k(2));
        idx.insert(Value::Int(7), k(3));
        let got: Vec<&Key> = idx.candidates(&Value::Int(5)).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(idx.candidates(&Value::Int(9)).count(), 0);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut idx = SecondaryIndex::new(0);
        idx.insert(Value::Null, k(1));
        assert!(idx.is_empty());
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut idx = SecondaryIndex::new(0);
        idx.insert(Value::Int(5), k(1));
        idx.insert(Value::Int(5), k(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn stale_removal() {
        let mut idx = SecondaryIndex::new(0);
        idx.insert(Value::Int(5), k(1));
        idx.insert(Value::Int(6), k(1));
        idx.remove_stale(&[Value::Int(5)], &k(1));
        assert_eq!(idx.candidates(&Value::Int(5)).count(), 0);
        assert_eq!(idx.candidates(&Value::Int(6)).count(), 1);
    }

    #[test]
    fn int_float_equality_unifies_postings() {
        // Key-side Int(5) and query-side Float(5.0) hash/compare equal.
        let mut idx = SecondaryIndex::new(0);
        idx.insert(Value::Int(5), k(1));
        assert_eq!(idx.candidates(&Value::Float(5.0)).count(), 1);
    }
}
