//! # sirep-storage
//!
//! An in-memory multi-version storage engine that provides **snapshot
//! isolation with PostgreSQL's lock-based write-conflict detection** — the
//! database substrate under the SI-Rep replication middleware (SIGMOD 2005).
//!
//! The paper's replica control algorithms depend on very specific database
//! behaviour (its §4 is devoted to it):
//!
//! - transactions read from a snapshot and never block on readers/writers;
//! - a write takes an exclusive tuple lock *during execution* and performs a
//!   version check at lock grant — **first-updater-wins**, so conflicts can
//!   surface before commit, blocked writers abort when the holder commits,
//!   and local/remote transactions can deadlock inside the database;
//! - writesets (identifier + after-image of every modified tuple) can be
//!   extracted **before commit** and applied at other replicas through the
//!   normal write path.
//!
//! This crate reproduces that contract faithfully. See `DESIGN.md` at the
//! workspace root for the substitution argument (why an in-memory engine +
//! cost model stands in for 2005 PostgreSQL).
//!
//! ## Quick example
//!
//! ```
//! use sirep_storage::{Database, TableSchema, Column, ColumnType, Value, Key};
//!
//! let db = Database::in_memory();
//! db.create_table(TableSchema::new(
//!     "accounts",
//!     vec![Column::new("id", ColumnType::Int), Column::new("balance", ColumnType::Int)],
//!     &["id"],
//! ).unwrap()).unwrap();
//!
//! let t = db.begin().unwrap();
//! t.insert("accounts", vec![Value::Int(1), Value::Int(100)]).unwrap();
//! let ws = t.writeset();          // pre-commit writeset extraction
//! assert_eq!(ws.len(), 1);
//! t.commit().unwrap();
//!
//! let r = db.begin().unwrap();
//! let row = r.read("accounts", &Key::single(1)).unwrap().unwrap();
//! assert_eq!(row[1], Value::Int(100));
//! ```

pub mod cost;
pub mod engine;
pub mod index;
pub mod lock;
pub mod schema;
pub mod value;
pub mod version;
pub mod wire;
pub mod writeset;

pub use cost::{CostGate, CostModel};
pub use engine::{Database, TxnHandle};
pub use index::SecondaryIndex;
pub use lock::{LockId, LockManager};
pub use schema::{Column, ColumnType, TableSchema};
pub use value::{Key, Row, Value};
pub use version::{CommitTs, Version, VersionChain};
pub use writeset::{TupleId, WriteSet, WsEntry, WsOp};

#[cfg(test)]
mod engine_tests;
#[cfg(test)]
mod proptests;
