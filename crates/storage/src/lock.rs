//! The tuple lock manager.
//!
//! §4 of the paper describes how PostgreSQL detects write/write conflicts:
//! *"Whenever a transaction Ti wants to write a tuple x it acquires an
//! exclusive lock, and performs a version check. [...] If a transaction Tj
//! holds a lock on x when Ti requests its lock, Ti is blocked."* Deadlocks
//! between transactions are detected by the database and a victim aborted.
//!
//! This module implements exactly that blocking machinery:
//!
//! - per-tuple exclusive locks with FIFO wait queues;
//! - a wait-for graph with immediate cycle detection — because every
//!   transaction waits on at most one lock the graph is functional, so any
//!   cycle created by a new wait edge must pass through the new waiter,
//!   and following the chain from the requester suffices;
//! - "dooming": an external kill (crash simulation, replica shutdown) wakes
//!   a blocked transaction and makes its acquisition fail. Note that the
//!   paper points out a *client* cannot abort a blocked transaction
//!   (§4.3.1); dooming models the database process dying, not a client
//!   rollback, and the engine only exposes it through crash APIs.
//!
//! The whole manager is one mutex plus one condvar. Lock operations are
//! short critical sections (no I/O, no user code); at the scale of this
//! reproduction (tens of threads) this is both simple and fast, and all
//! simulated service times sleep *outside* the critical section.

use crate::value::Key;
use parking_lot::{Condvar, Mutex};
use sirep_common::{AbortReason, TxnId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifies a lockable tuple.
pub type LockId = (Arc<str>, Key);

#[derive(Debug)]
struct LockEntry {
    owner: TxnId,
    waiters: VecDeque<TxnId>,
}

#[derive(Debug, Default)]
struct LmState {
    locks: HashMap<LockId, LockEntry>,
    /// waiter → owner it currently waits on (functional wait-for graph).
    waits_for: HashMap<TxnId, TxnId>,
    /// Transactions killed from outside while possibly blocked.
    doomed: std::collections::HashSet<TxnId>,
}

impl LmState {
    /// Does inserting/refreshing the edge `from → ...` close a cycle back to
    /// `from`? Follows the functional wait-for chain.
    fn cycle_through(&self, from: TxnId) -> bool {
        let mut cur = from;
        let mut hops = 0;
        while let Some(&next) = self.waits_for.get(&cur) {
            if next == from {
                return true;
            }
            cur = next;
            hops += 1;
            if hops > self.waits_for.len() {
                // Defensive: a cycle not involving `from` (cannot happen by
                // construction, but never loop forever).
                return false;
            }
        }
        false
    }

    fn remove_waiter(&mut self, id: &LockId, txn: TxnId) {
        if let Some(e) = self.locks.get_mut(id) {
            e.waiters.retain(|&w| w != txn);
        }
        self.waits_for.remove(&txn);
    }
}

/// The lock manager. Shared by all transactions of one database replica.
#[derive(Debug, Default)]
pub struct LockManager {
    state: Mutex<LmState>,
    cond: Condvar,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquire the exclusive lock on `id` for `txn`, blocking while another
    /// transaction holds it. Fails with [`AbortReason::Deadlock`] when the
    /// wait would close a cycle, or [`AbortReason::Shutdown`] when the
    /// transaction was doomed while waiting. Re-acquiring an owned lock is
    /// a no-op.
    pub fn acquire(&self, txn: TxnId, id: &LockId) -> Result<(), AbortReason> {
        let mut st = self.state.lock();
        if st.doomed.contains(&txn) {
            return Err(AbortReason::Shutdown);
        }
        loop {
            match st.locks.get_mut(id) {
                None => {
                    st.locks.insert(id.clone(), LockEntry { owner: txn, waiters: VecDeque::new() });
                    return Ok(());
                }
                Some(e) if e.owner == txn => return Ok(()),
                Some(e) => {
                    let owner = e.owner;
                    if !e.waiters.contains(&txn) {
                        e.waiters.push_back(txn);
                    }
                    st.waits_for.insert(txn, owner);
                    if st.cycle_through(txn) {
                        st.remove_waiter(id, txn);
                        return Err(AbortReason::Deadlock);
                    }
                }
            }
            self.cond.wait(&mut st);
            // Woken: either we were granted ownership, the owner changed
            // (refresh the wait edge), or we were doomed.
            if st.doomed.contains(&txn) {
                st.remove_waiter(id, txn);
                return Err(AbortReason::Shutdown);
            }
            if let Some(e) = st.locks.get(id) {
                if e.owner == txn {
                    st.waits_for.remove(&txn);
                    return Ok(());
                }
            }
            // else: loop re-enqueues / refreshes the edge.
        }
    }

    /// Release every lock in `ids` held by `txn`, granting each to its next
    /// waiter (FIFO) and waking all blocked threads to re-check.
    pub fn release_all(&self, txn: TxnId, ids: &[LockId]) {
        let mut st = self.state.lock();
        for id in ids {
            let Some(e) = st.locks.get_mut(id) else {
                continue;
            };
            if e.owner != txn {
                continue; // already granted away (defensive)
            }
            if let Some(next) = e.waiters.pop_front() {
                e.owner = next;
                let remaining: Vec<TxnId> = e.waiters.iter().copied().collect();
                st.waits_for.remove(&next);
                for w in remaining {
                    st.waits_for.insert(w, next);
                }
            } else {
                st.locks.remove(id);
            }
        }
        st.doomed.remove(&txn);
        drop(st);
        self.cond.notify_all();
    }

    /// Kill `txn` from outside: wakes it if blocked and makes any current or
    /// future acquisition fail with [`AbortReason::Shutdown`]. The flag is
    /// cleared when the transaction releases its locks (terminates).
    pub fn doom(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.doomed.insert(txn);
        drop(st);
        self.cond.notify_all();
    }

    /// Test/inspection helper: current owner of a lock, if held.
    pub fn owner_of(&self, id: &LockId) -> Option<TxnId> {
        self.state.lock().locks.get(id).map(|e| e.owner)
    }

    /// Test/inspection helper: number of transactions blocked right now.
    pub fn blocked_count(&self) -> usize {
        self.state.lock().waits_for.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    fn lid(k: i64) -> LockId {
        (Arc::from("t"), Key::single(Value::Int(k)))
    }

    #[test]
    fn exclusive_and_reentrant() {
        let lm = LockManager::new();
        let a = TxnId::new(1);
        lm.acquire(a, &lid(1)).unwrap();
        lm.acquire(a, &lid(1)).unwrap(); // reentrant no-op
        assert_eq!(lm.owner_of(&lid(1)), Some(a));
        lm.release_all(a, &[lid(1)]);
        assert_eq!(lm.owner_of(&lid(1)), None);
    }

    #[test]
    fn blocking_and_fifo_grant() {
        let lm = Arc::new(LockManager::new());
        let a = TxnId::new(1);
        lm.acquire(a, &lid(1)).unwrap();

        let got_b = Arc::new(AtomicBool::new(false));
        let lm2 = Arc::clone(&lm);
        let got_b2 = Arc::clone(&got_b);
        let h = thread::spawn(move || {
            lm2.acquire(TxnId::new(2), &lid(1)).unwrap();
            got_b2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(50));
        assert!(!got_b.load(Ordering::SeqCst), "B must block while A holds");
        assert_eq!(lm.blocked_count(), 1);
        lm.release_all(a, &[lid(1)]);
        h.join().unwrap();
        assert!(got_b.load(Ordering::SeqCst));
        assert_eq!(lm.owner_of(&lid(1)), Some(TxnId::new(2)));
    }

    #[test]
    fn two_party_deadlock_aborts_the_closer() {
        let lm = Arc::new(LockManager::new());
        let a = TxnId::new(1);
        let b = TxnId::new(2);
        lm.acquire(a, &lid(1)).unwrap();
        lm.acquire(b, &lid(2)).unwrap();

        // B blocks on 1 (held by A).
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(b, &lid(1)));
        while lm.blocked_count() == 0 {
            thread::yield_now();
        }
        // A now requests 2 (held by B, which waits on A) → cycle → A aborts.
        let r = lm.acquire(a, &lid(2));
        assert_eq!(r, Err(AbortReason::Deadlock));
        // A (the victim) releases; B obtains the lock.
        lm.release_all(a, &[lid(1)]);
        assert_eq!(h.join().unwrap(), Ok(()));
        lm.release_all(b, &[lid(1), lid(2)]);
    }

    #[test]
    fn three_party_cycle_detected() {
        let lm = Arc::new(LockManager::new());
        let (a, b, c) = (TxnId::new(1), TxnId::new(2), TxnId::new(3));
        lm.acquire(a, &lid(1)).unwrap();
        lm.acquire(b, &lid(2)).unwrap();
        lm.acquire(c, &lid(3)).unwrap();

        let lm_b = Arc::clone(&lm);
        let hb = thread::spawn(move || lm_b.acquire(b, &lid(1)));
        let lm_c = Arc::clone(&lm);
        let hc = thread::spawn(move || lm_c.acquire(c, &lid(2)));
        while lm.blocked_count() < 2 {
            thread::yield_now();
        }
        // a → lid(3) closes a ← b ← c ← a.
        assert_eq!(lm.acquire(a, &lid(3)), Err(AbortReason::Deadlock));
        lm.release_all(a, &[lid(1)]);
        assert_eq!(hb.join().unwrap(), Ok(()));
        lm.release_all(b, &[lid(1), lid(2)]);
        assert_eq!(hc.join().unwrap(), Ok(()));
    }

    #[test]
    fn doom_wakes_blocked_waiter() {
        let lm = Arc::new(LockManager::new());
        let a = TxnId::new(1);
        let b = TxnId::new(2);
        lm.acquire(a, &lid(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(b, &lid(1)));
        while lm.blocked_count() == 0 {
            thread::yield_now();
        }
        lm.doom(b);
        assert_eq!(h.join().unwrap(), Err(AbortReason::Shutdown));
        // A is unaffected.
        assert_eq!(lm.owner_of(&lid(1)), Some(a));
        lm.release_all(a, &[lid(1)]);
    }

    #[test]
    fn doomed_txn_cannot_acquire_new_locks() {
        let lm = LockManager::new();
        let a = TxnId::new(1);
        lm.doom(a);
        assert_eq!(lm.acquire(a, &lid(1)), Err(AbortReason::Shutdown));
        // Termination clears the doom flag and the id can be reused.
        lm.release_all(a, &[]);
        assert_eq!(lm.acquire(a, &lid(1)), Ok(()));
        lm.release_all(a, &[lid(1)]);
    }

    #[test]
    fn grant_chain_through_multiple_waiters() {
        let lm = Arc::new(LockManager::new());
        let a = TxnId::new(1);
        lm.acquire(a, &lid(1)).unwrap();
        let mut handles = Vec::new();
        for i in 2..=5 {
            let lm2 = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                let me = TxnId::new(i);
                lm2.acquire(me, &lid(1)).unwrap();
                // Hold briefly, then pass on.
                thread::sleep(Duration::from_millis(5));
                lm2.release_all(me, &[lid(1)]);
            }));
        }
        while lm.blocked_count() < 4 {
            thread::yield_now();
        }
        lm.release_all(a, &[lid(1)]);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.owner_of(&lid(1)), None);
        assert_eq!(lm.blocked_count(), 0);
    }

    #[test]
    fn no_false_deadlock_on_simple_contention() {
        // Many txns hammering two locks in the same order never deadlock.
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let lm2 = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                let me = TxnId::new(i + 1);
                for _ in 0..50 {
                    lm2.acquire(me, &lid(1)).unwrap();
                    lm2.acquire(me, &lid(2)).unwrap();
                    lm2.release_all(me, &[lid(1), lid(2)]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
