//! Property-based tests for the storage engine.
//!
//! The main property is **model conformance**: a random sequence of
//! committed transactions applied to the engine must leave exactly the
//! state that the same sequence leaves in a trivial `BTreeMap` model. A
//! second group checks writeset extraction/application: replaying a
//! transaction's writeset on a second database must reproduce the state —
//! the foundation the whole replication protocol rests on.

use crate::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum ModelOp {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn op() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0i64..20, 0i64..100).prop_map(|(k, v)| ModelOp::Insert(k, v)),
        (0i64..20, 0i64..100).prop_map(|(k, v)| ModelOp::Update(k, v)),
        (0i64..20).prop_map(ModelOp::Delete),
    ]
}

fn kv_db() -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "kv",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
            &["k"],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

/// Apply one op to both engine txn and model; returns false when the engine
/// (rightly) rejected it (duplicate insert), in which case the whole
/// transaction is considered failed and the model txn is discarded.
fn apply(txn: &TxnHandle, model: &mut BTreeMap<i64, i64>, op: &ModelOp) -> bool {
    match op {
        ModelOp::Insert(k, v) => {
            let expect_dup = model.contains_key(k);
            match txn.insert("kv", vec![Value::Int(*k), Value::Int(*v)]) {
                Ok(()) => {
                    assert!(!expect_dup, "engine accepted duplicate insert of {k}");
                    model.insert(*k, *v);
                    true
                }
                Err(e) => {
                    assert!(
                        matches!(e, sirep_common::DbError::DuplicateKey(_)),
                        "unexpected insert error: {e}"
                    );
                    assert!(expect_dup, "engine rejected non-duplicate insert of {k}");
                    false
                }
            }
        }
        ModelOp::Update(k, v) => {
            txn.update_key("kv", Key::single(*k), vec![Value::Int(*k), Value::Int(*v)]).unwrap();
            model.insert(*k, *v);
            true
        }
        ModelOp::Delete(k) => {
            txn.delete_key("kv", Key::single(*k)).unwrap();
            model.remove(k);
            true
        }
    }
}

fn engine_state(db: &Database) -> BTreeMap<i64, i64> {
    let t = db.begin().unwrap();
    let out = t
        .scan("kv", |_| true)
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    t.commit().unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Sequential committed transactions leave exactly the model state.
    #[test]
    fn engine_matches_map_model(txns in prop::collection::vec(prop::collection::vec(op(), 1..6), 1..12)) {
        let db = kv_db();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for ops in &txns {
            let mut scratch = model.clone();
            let txn = db.begin().unwrap();
            let mut ok = true;
            for o in ops {
                if !apply(&txn, &mut scratch, o) {
                    ok = false;
                    break; // txn is doomed (duplicate key)
                }
            }
            if ok {
                txn.commit().unwrap();
                model = scratch;
            }
            // else: txn already terminated by the engine; model unchanged.
        }
        prop_assert_eq!(engine_state(&db), model);
    }

    /// Replaying extracted writesets reproduces the primary's state on a
    /// replica, transaction by transaction.
    #[test]
    fn writeset_replay_replicates_state(txns in prop::collection::vec(prop::collection::vec(op(), 1..6), 1..10)) {
        let primary = kv_db();
        let replica = kv_db();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for ops in &txns {
            let mut scratch = model.clone();
            let txn = primary.begin().unwrap();
            let mut ok = true;
            for o in ops {
                if !apply(&txn, &mut scratch, o) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let ws = txn.writeset();
            txn.commit().unwrap();
            model = scratch;
            let r = replica.begin().unwrap();
            r.apply_writeset(&ws).unwrap();
            r.commit().unwrap();
        }
        prop_assert_eq!(engine_state(&primary), engine_state(&replica));
        prop_assert_eq!(engine_state(&primary), model);
    }

    /// Writeset intersection agrees with the brute-force definition.
    #[test]
    fn writeset_intersection_is_exact(
        a in prop::collection::vec((0usize..3, 0i64..30), 0..12),
        b in prop::collection::vec((0usize..3, 0i64..30), 0..12),
    ) {
        let tables = ["t0", "t1", "t2"];
        let build = |pairs: &[(usize, i64)]| {
            let mut ws = WriteSet::new();
            for (t, k) in pairs {
                ws.push(std::sync::Arc::from(tables[*t]), Key::single(*k), WsOp::Delete);
            }
            ws
        };
        let wa = build(&a);
        let wb = build(&b);
        let brute = a.iter().any(|x| b.contains(x));
        prop_assert_eq!(wa.intersects(&wb), brute);
        prop_assert_eq!(wb.intersects(&wa), brute);
    }

    /// Snapshot stability: a reader opened before a batch of writers sees
    /// none of their effects, regardless of interleaving.
    #[test]
    fn snapshot_is_stable_under_later_commits(writes in prop::collection::vec((0i64..10, 0i64..100), 1..20)) {
        let db = kv_db();
        {
            let t = db.begin().unwrap();
            for k in 0..10 {
                t.insert("kv", vec![Value::Int(k), Value::Int(-1)]).unwrap();
            }
            t.commit().unwrap();
        }
        let reader = db.begin().unwrap();
        for (k, v) in &writes {
            let w = db.begin().unwrap();
            w.update_key("kv", Key::single(*k), vec![Value::Int(*k), Value::Int(*v)]).unwrap();
            w.commit().unwrap();
        }
        let seen = reader.scan("kv", |_| true).unwrap();
        prop_assert_eq!(seen.len(), 10);
        for r in &seen {
            prop_assert_eq!(r[1].as_int().unwrap(), -1, "reader saw a later write");
        }
        reader.commit().unwrap();
    }
}
