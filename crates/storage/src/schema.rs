//! Table schemas.

use crate::value::{Row, Value};
use sirep_common::DbError;

/// Column data types (the subset the workloads need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Text,
}

impl ColumnType {
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Text => "text",
        }
    }

    /// Whether `v` is acceptable for a column of this type. NULL is allowed
    /// everywhere (the workloads don't need NOT NULL) and ints widen to
    /// float columns.
    pub fn accepts(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_) | Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }
}

/// One column definition.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column { name: name.into(), ty }
    }
}

/// A table definition: named columns plus the primary-key column set.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Indices into `columns` forming the primary key, in key order.
    pub pk: Vec<usize>,
}

impl TableSchema {
    /// Build a schema; `pk_cols` are column names.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        pk_cols: &[&str],
    ) -> Result<TableSchema, DbError> {
        let name = name.into();
        let mut pk = Vec::with_capacity(pk_cols.len());
        for pk_col in pk_cols {
            let idx = columns
                .iter()
                .position(|c| c.name == *pk_col)
                .ok_or_else(|| DbError::UnknownColumn((*pk_col).to_owned()))?;
            pk.push(idx);
        }
        assert!(!pk.is_empty(), "table {name} must have a primary key");
        Ok(TableSchema { name, columns, pk })
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Project a row's primary key.
    pub fn key_of(&self, row: &Row) -> crate::value::Key {
        crate::value::Key(self.pk.iter().map(|&i| row[i].clone()).collect())
    }

    /// Validate a full row against the schema (arity + per-column types,
    /// non-null PK).
    pub fn check_row(&self, row: &Row) -> Result<(), DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::Internal(format!(
                "row arity {} does not match table {} arity {}",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.accepts(v) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                });
            }
        }
        for &i in &self.pk {
            if row[i].is_null() {
                return Err(DbError::TypeMismatch {
                    column: self.columns[i].name.clone(),
                    expected: "non-null primary key",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Key;

    fn item_schema() -> TableSchema {
        TableSchema::new(
            "item",
            vec![
                Column::new("i_id", ColumnType::Int),
                Column::new("i_title", ColumnType::Text),
                Column::new("i_cost", ColumnType::Float),
            ],
            &["i_id"],
        )
        .unwrap()
    }

    #[test]
    fn key_projection() {
        let s = item_schema();
        let row = vec![Value::Int(7), Value::Text("book".into()), Value::Float(9.99)];
        assert_eq!(s.key_of(&row), Key::single(7));
    }

    #[test]
    fn composite_pk() {
        let s = TableSchema::new(
            "order_line",
            vec![
                Column::new("ol_o_id", ColumnType::Int),
                Column::new("ol_id", ColumnType::Int),
                Column::new("ol_qty", ColumnType::Int),
            ],
            &["ol_o_id", "ol_id"],
        )
        .unwrap();
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(s.key_of(&row), Key::composite(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn unknown_pk_column_rejected() {
        let r = TableSchema::new("t", vec![Column::new("a", ColumnType::Int)], &["b"]);
        assert!(matches!(r, Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn row_validation() {
        let s = item_schema();
        assert!(s.check_row(&vec![Value::Int(1), Value::Text("x".into()), Value::Int(5)]).is_ok());
        // wrong arity
        assert!(s.check_row(&vec![Value::Int(1)]).is_err());
        // wrong type
        let bad = s.check_row(&vec![Value::Text("no".into()), Value::Null, Value::Null]);
        assert!(matches!(bad, Err(DbError::TypeMismatch { .. })));
        // null pk
        let badpk = s.check_row(&vec![Value::Null, Value::Null, Value::Null]);
        assert!(matches!(badpk, Err(DbError::TypeMismatch { .. })));
    }

    #[test]
    fn int_widens_to_float_column() {
        assert!(ColumnType::Float.accepts(&Value::Int(3)));
        assert!(!ColumnType::Int.accepts(&Value::Float(3.0)));
    }

    #[test]
    fn column_lookup() {
        let s = item_schema();
        assert_eq!(s.column_index("i_cost"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.arity(), 3);
    }
}
