//! Values, rows and keys.
//!
//! The engine is dynamically typed at runtime (like a tuple store seen
//! through JDBC): a [`Row`] is a vector of [`Value`]s positionally matching
//! the table schema, and a [`Key`] is the row's primary-key projection.
//! Keys must be totally ordered and hashable so they can serve as BTree map
//! keys and as writeset elements; floats use IEEE `total_cmp` for that.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    /// Human-oriented type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued comparison: NULL compares as unknown (`None`).
    /// Int/Float compare numerically; other cross-type comparisons are
    /// unknown.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            _ => None,
        }
    }

    /// Total order used for keys and ORDER BY: NULL sorts first, then by a
    /// fixed type rank, then by value. Unlike [`Value::sql_cmp`] this is
    /// total, so it can back `Ord` for [`Key`].
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and Float that compare equal must hash equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// A tuple: one value per schema column, positionally.
pub type Row = Vec<Value>;

/// A primary key: the PK-column projection of a row. Composite keys are
/// supported (e.g. TPC-W `order_line(ol_o_id, ol_id)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key(pub Vec<Value>);

impl Key {
    pub fn single(v: impl Into<Value>) -> Key {
        Key(vec![v.into()])
    }

    pub fn composite(vs: Vec<Value>) -> Key {
        Key(vs)
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        let mut it_a = self.0.iter();
        let mut it_b = other.0.iter();
        loop {
            match (it_a.next(), it_b.next()) {
                (Some(a), Some(b)) => match a.total_cmp(b) {
                    Ordering::Equal => {}
                    non_eq => return non_eq,
                },
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
            }
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn int_float_equality_consistent_with_hash() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn text_int_not_comparable_in_sql() {
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = [Value::Text("a".into()), Value::Int(5), Value::Null, Value::Float(1.0)];
        vs.sort_by(Value::total_cmp);
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Float(1.0));
        assert_eq!(vs[2], Value::Int(5));
        assert_eq!(vs[3], Value::Text("a".into()));
    }

    #[test]
    fn composite_key_ordering_is_lexicographic() {
        let a = Key::composite(vec![Value::Int(1), Value::Int(2)]);
        let b = Key::composite(vec![Value::Int(1), Value::Int(3)]);
        let c = Key::composite(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
        assert!(b < c);
        let shorter = Key::composite(vec![Value::Int(1)]);
        assert!(shorter < a);
    }

    #[test]
    fn key_equality_and_hash_in_map() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Key::single(42), "x");
        assert_eq!(m.get(&Key::single(42)), Some(&"x"));
        assert_eq!(m.get(&Key::single(43)), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("a".into()).to_string(), "'a'");
        assert_eq!(
            Key::composite(vec![Value::Int(1), Value::Text("b".into())]).to_string(),
            "(1, 'b')"
        );
    }
}
