//! Tuple version chains.
//!
//! Every committed write creates a new [`Version`] of its tuple, stamped
//! with the commit timestamp of the creating transaction. A transaction
//! with snapshot `s` sees the newest version with `commit_ts <= s` — the
//! paper's *"Ti reads the version created by transaction Tj such that Tj
//! executes before Ti, and there is no other transaction Tk that also wrote
//! x, executes before Ti and commits after Tj"*.

use crate::value::Row;
use std::sync::Arc;

/// A database-replica-local commit timestamp. Commits are serialized per
/// replica, so these are dense: the n-th committing update transaction gets
/// timestamp n. Snapshot `s` sees exactly commits 1..=s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitTs(pub u64);

impl CommitTs {
    /// Before any commit.
    pub const ZERO: CommitTs = CommitTs(0);

    #[must_use]
    pub fn next(self) -> CommitTs {
        CommitTs(self.0 + 1)
    }
}

/// One committed version of a tuple. `row == None` is a deletion tombstone.
#[derive(Debug, Clone)]
pub struct Version {
    pub commit_ts: CommitTs,
    pub row: Option<Arc<Row>>,
}

/// All committed versions of one tuple, oldest first.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    pub fn new() -> VersionChain {
        VersionChain::default()
    }

    /// Append a committed version. Commit timestamps must be installed in
    /// increasing order (commits are serialized by the engine).
    pub fn install(&mut self, v: Version) {
        if let Some(last) = self.versions.last() {
            debug_assert!(
                v.commit_ts > last.commit_ts,
                "versions must be installed in commit order"
            );
        }
        self.versions.push(v);
    }

    /// The newest committed version, regardless of visibility. This is what
    /// the write-time version check compares against (first-updater-wins).
    pub fn newest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The version a transaction with snapshot `s` reads: the newest with
    /// `commit_ts <= s`. Returns `None` when the tuple did not exist (or
    /// only versions newer than `s` exist). A tombstone yields
    /// `Some(version)` with `row == None`.
    pub fn visible(&self, s: CommitTs) -> Option<&Version> {
        // Chains are short (GC keeps them pruned); scan from the newest end.
        self.versions.iter().rev().find(|v| v.commit_ts <= s)
    }

    /// The visible *live* row for snapshot `s` (`None` for absent/deleted).
    pub fn visible_row(&self, s: CommitTs) -> Option<&Arc<Row>> {
        self.visible(s).and_then(|v| v.row.as_ref())
    }

    /// Drop versions no active snapshot can see: everything strictly older
    /// than the newest version with `commit_ts <= min_active_snapshot`.
    /// Returns the dropped versions (secondary-index maintenance needs
    /// their values).
    pub fn prune(&mut self, min_active_snapshot: CommitTs) -> Vec<Version> {
        let keep_from =
            self.versions.iter().rposition(|v| v.commit_ts <= min_active_snapshot).unwrap_or(0);
        if keep_from == 0 {
            return Vec::new();
        }
        self.versions.drain(..keep_from).collect()
    }

    /// All retained versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Whether the whole chain is a dead tombstone no snapshot can resurrect
    /// (single tombstone version older than every active snapshot) — such
    /// entries can be removed from the table map entirely.
    pub fn is_garbage(&self, min_active_snapshot: CommitTs) -> bool {
        self.versions.len() == 1
            && self.versions[0].row.is_none()
            && self.versions[0].commit_ts <= min_active_snapshot
    }

    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(v: i64) -> Arc<Row> {
        Arc::new(vec![Value::Int(v)])
    }

    fn chain(specs: &[(u64, Option<i64>)]) -> VersionChain {
        let mut c = VersionChain::new();
        for &(ts, val) in specs {
            c.install(Version {
                commit_ts: CommitTs(ts),
                row: val.map(|v| Arc::new(vec![Value::Int(v)])),
            });
        }
        c
    }

    #[test]
    fn visibility_picks_newest_not_after_snapshot() {
        let c = chain(&[(1, Some(10)), (3, Some(30)), (5, Some(50))]);
        assert!(c.visible(CommitTs(0)).is_none());
        assert_eq!(c.visible_row(CommitTs(1)).unwrap()[0], Value::Int(10));
        assert_eq!(c.visible_row(CommitTs(2)).unwrap()[0], Value::Int(10));
        assert_eq!(c.visible_row(CommitTs(3)).unwrap()[0], Value::Int(30));
        assert_eq!(c.visible_row(CommitTs(4)).unwrap()[0], Value::Int(30));
        assert_eq!(c.visible_row(CommitTs(99)).unwrap()[0], Value::Int(50));
    }

    #[test]
    fn tombstone_hides_row() {
        let c = chain(&[(1, Some(10)), (2, None)]);
        assert!(c.visible_row(CommitTs(2)).is_none());
        // But the tombstone itself is a visible version (needed so readers
        // distinguish "deleted" from "never existed").
        assert!(c.visible(CommitTs(2)).is_some());
        assert_eq!(c.visible_row(CommitTs(1)).unwrap()[0], Value::Int(10));
    }

    #[test]
    fn newest_ignores_snapshot() {
        let c = chain(&[(1, Some(10)), (7, Some(70))]);
        assert_eq!(c.newest().unwrap().commit_ts, CommitTs(7));
    }

    #[test]
    fn prune_keeps_visibility_for_min_snapshot() {
        let mut c = chain(&[(1, Some(10)), (3, Some(30)), (5, Some(50))]);
        let dropped = c.prune(CommitTs(4));
        assert_eq!(dropped.len(), 1); // version@1 is unreachable once min snapshot is 4
        assert_eq!(dropped[0].commit_ts, CommitTs(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.visible_row(CommitTs(4)).unwrap()[0], Value::Int(30));
        assert_eq!(c.visible_row(CommitTs(5)).unwrap()[0], Value::Int(50));
    }

    #[test]
    fn prune_noop_when_everything_needed() {
        let mut c = chain(&[(3, Some(30)), (5, Some(50))]);
        assert!(c.prune(CommitTs(2)).is_empty());
        assert!(c.prune(CommitTs(3)).is_empty());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn garbage_detection() {
        let mut c = chain(&[(1, Some(10)), (2, None)]);
        assert!(!c.is_garbage(CommitTs(5)));
        c.prune(CommitTs(5));
        assert!(c.is_garbage(CommitTs(5)));
        assert!(!c.is_garbage(CommitTs(1)));
        let live = chain(&[(1, Some(10))]);
        assert!(!live.is_garbage(CommitTs(5)));
    }

    #[test]
    fn row_data_is_shared_not_cloned() {
        let r = row(1);
        let mut c = VersionChain::new();
        c.install(Version { commit_ts: CommitTs(1), row: Some(Arc::clone(&r)) });
        assert_eq!(Arc::strong_count(&r), 2);
    }
}
