//! Wire codec for storage types: values, keys, rows, writesets.
//!
//! Writesets are the unit of replication, so they are the payload the TCP
//! transport ships most. A [`WriteSet`] decodes by replaying its entries
//! through [`WriteSet::push`], which rebuilds the conflict-probe index —
//! the index is derived state and never crosses the wire. Table names
//! re-intern into fresh `Arc<str>`s on the receiving side; nothing decoded
//! aliases sender memory.

use crate::value::{Key, Value};
use crate::writeset::{WriteSet, WsEntry, WsOp};
use sirep_common::wire::{Wire, WireError, WireReader};
use std::sync::Arc;

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                i.encode(out);
            }
            Value::Float(f) => {
                out.push(2);
                f.encode(out);
            }
            Value::Text(s) => {
                out.push(3);
                s.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(i64::decode(r)?)),
            2 => Ok(Value::Float(f64::decode(r)?)),
            3 => Ok(Value::Text(String::decode(r)?)),
            _ => Err(WireError::Corrupt("value tag")),
        }
    }
}

impl Wire for Key {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Key(Vec::<Value>::decode(r)?))
    }
}

impl Wire for WsOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WsOp::Put(row) => {
                out.push(0);
                row.encode(out);
            }
            WsOp::Delete => out.push(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(WsOp::Put(Vec::<Value>::decode(r)?)),
            1 => Ok(WsOp::Delete),
            _ => Err(WireError::Corrupt("wsop tag")),
        }
    }
}

impl Wire for WsEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.table.len() as u32).encode(out);
        out.extend_from_slice(self.table.as_bytes());
        self.key.encode(out);
        self.op.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let table: Arc<str> = Arc::from(String::decode(r)?.as_str());
        Ok(WsEntry { table, key: Key::decode(r)?, op: WsOp::decode(r)? })
    }
}

impl Wire for WriteSet {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.entries().len() as u32).encode(out);
        for e in self.entries() {
            e.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(1)?;
        let mut ws = WriteSet::new();
        for _ in 0..n {
            let e = WsEntry::decode(r)?;
            ws.push(e.table, e.key, e.op);
        }
        Ok(ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
    }

    #[test]
    fn values_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Int(i64::MIN));
        round_trip(&Value::Float(-0.0));
        round_trip(&Value::Text(String::from("naïve ε")));
        round_trip(&Key::composite(vec![Value::Int(1), Value::Text("b".into())]));
    }

    #[test]
    fn writeset_round_trips_and_rebuilds_index() {
        let mut ws = WriteSet::new();
        ws.push(Arc::from("stock"), Key::single(3), WsOp::Put(vec![Value::Int(9)]));
        ws.push(Arc::from("orders"), Key::single(1), WsOp::Delete);
        let back = WriteSet::from_wire(&ws.to_wire()).expect("decode");
        assert_eq!(back.entries(), ws.entries());
        // The probe index is rebuilt, not shipped: certification works.
        assert!(back.contains("stock", &Key::single(3)));
        assert!(back.intersects(&ws));
    }

    #[test]
    fn corrupt_value_tag_rejected() {
        assert_eq!(Value::from_wire(&[7]), Err(WireError::Corrupt("value tag")));
        assert_eq!(WsOp::from_wire(&[9]), Err(WireError::Corrupt("wsop tag")));
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            ".*".prop_map(Value::Text),
        ]
    }

    fn arb_entry() -> impl Strategy<Value = WsEntry> {
        (
            "[a-z]{1,8}",
            proptest::collection::vec(arb_value(), 1..3),
            prop_oneof![
                proptest::collection::vec(arb_value(), 0..4).prop_map(WsOp::Put),
                Just(WsOp::Delete)
            ],
        )
            .prop_map(|(table, key, op)| WsEntry {
                table: Arc::from(table.as_str()),
                key: Key::composite(key),
                op,
            })
    }

    proptest! {
        #[test]
        fn prop_values_round_trip(v in arb_value()) {
            // NaN floats break PartialEq-based comparison; compare bits.
            let back = Value::from_wire(&v.to_wire()).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                _ => prop_assert_eq!(&back, &v),
            }
        }

        #[test]
        fn prop_writesets_round_trip(entries in proptest::collection::vec(arb_entry(), 0..16)) {
            let mut ws = WriteSet::new();
            for e in entries {
                ws.push(e.table, e.key, e.op);
            }
            let bytes = ws.to_wire();
            let back = WriteSet::from_wire(&bytes).unwrap();
            prop_assert_eq!(back.entries(), ws.entries());
            prop_assert_eq!(back.to_wire(), bytes);
        }

        #[test]
        fn prop_truncated_writesets_rejected(entries in proptest::collection::vec(arb_entry(), 1..4)) {
            let mut ws = WriteSet::new();
            for e in entries {
                ws.push(e.table, e.key, e.op);
            }
            let bytes = ws.to_wire();
            for cut in 0..bytes.len() {
                prop_assert!(WriteSet::from_wire(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Value::from_wire(&bytes);
            let _ = Key::from_wire(&bytes);
            let _ = WriteSet::from_wire(&bytes);
        }
    }
}
