//! Writesets: the unit of replication.
//!
//! The paper (§3): *"Writesets contain the changed objects and their
//! identifiers."* A [`WriteSet`] is extracted from a transaction **before
//! commit** (the paper's patched PostgreSQL exports modified tuples
//! pre-commit) and applied at remote replicas through the normal write path,
//! so remote application exhibits the same blocking/abort behaviour as local
//! execution.
//!
//! The middleware's validation step is a writeset **intersection test**
//! (`WS_i ∩ WS_j ≠ ∅`); it is the hot path of certification, so each
//! writeset carries a pre-built hash set of its (table, key) pairs.

use crate::value::{Key, Row};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The new state of one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum WsOp {
    /// Insert-or-update with the full new row image.
    Put(Row),
    /// Tuple deletion.
    Delete,
}

/// One modified tuple: identifier + after-image.
#[derive(Debug, Clone, PartialEq)]
pub struct WsEntry {
    pub table: Arc<str>,
    pub key: Key,
    pub op: WsOp,
}

/// The identity of one tuple as certification sees it: interned table name
/// plus primary key. Hashable and cheap to clone (the table side is an
/// `Arc<str>`), so conflict indexes — the writeset's own probe index, the
/// ws_list's last-certifier map, the tocommit queue's waiter lists — can all
/// share it as their key type.
pub type TupleId = (Arc<str>, Key);

/// The set of tuples a transaction wrote, in statement order (last write per
/// tuple wins; earlier writes to the same tuple are collapsed).
#[derive(Debug, Clone, Default)]
pub struct WriteSet {
    entries: Vec<WsEntry>,
    /// (table, key) → index into `entries`, for O(1) probes.
    index: HashMap<TupleId, usize>,
}

impl WriteSet {
    pub fn new() -> WriteSet {
        WriteSet::default()
    }

    /// Record a write. A later write to the same tuple replaces the earlier
    /// after-image but keeps its original position (the paper's simplifying
    /// "writes each object at most once" assumption is *not* imposed, per
    /// its footnote 1).
    pub fn push(&mut self, table: Arc<str>, key: Key, op: WsOp) {
        let id = (table.clone(), key.clone());
        if let Some(&i) = self.index.get(&id) {
            self.entries[i].op = op;
        } else {
            self.index.insert(id, self.entries.len());
            self.entries.push(WsEntry { table, key, op });
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[WsEntry] {
        &self.entries
    }

    pub fn contains(&self, table: &str, key: &Key) -> bool {
        self.get(table, key).is_some()
    }

    /// Look up the after-image this writeset holds for a tuple, if any.
    /// Used for read-your-writes inside the engine.
    pub fn get(&self, table: &str, key: &Key) -> Option<&WsOp> {
        // Probe without allocating: the index is small enough that a scan of
        // its keys would work, but a hash probe needs an owned key; instead
        // scan entries when small, probe when large.
        if self.entries.len() <= 8 {
            self.entries.iter().find(|e| &*e.table == table && &e.key == key).map(|e| &e.op)
        } else {
            let id = (Arc::from(table), key.clone());
            self.index.get(&id).map(|&i| &self.entries[i].op)
        }
    }

    /// The certification test: do two writesets touch a common tuple?
    /// Iterates the smaller set, probes the larger — O(min(|a|, |b|)).
    pub fn intersects(&self, other: &WriteSet) -> bool {
        let (small, large) =
            if self.index.len() <= other.index.len() { (self, other) } else { (other, self) };
        small.index.keys().any(|id| large.index.contains_key(id))
    }

    /// The [`TupleId`]s this writeset touches, in arbitrary order —
    /// certification only needs set semantics. Borrowed straight from the
    /// probe index, so iterating allocates nothing; the key-indexed
    /// conflict structures probe and clone from here.
    pub fn tuple_ids(&self) -> impl Iterator<Item = &TupleId> {
        self.index.keys()
    }
}

impl fmt::Display for WriteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let op = match e.op {
                WsOp::Put(_) => "put",
                WsOp::Delete => "del",
            };
            write!(f, "{}:{}{}", e.table, e.key, if op == "del" { "†" } else { "" })?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn push_and_len() {
        let mut ws = WriteSet::new();
        assert!(ws.is_empty());
        ws.push(t("a"), Key::single(1), WsOp::Put(vec![Value::Int(1)]));
        ws.push(t("a"), Key::single(2), WsOp::Delete);
        assert_eq!(ws.len(), 2);
        assert!(ws.contains("a", &Key::single(1)));
        assert!(!ws.contains("b", &Key::single(1)));
    }

    #[test]
    fn rewrite_same_tuple_collapses() {
        let mut ws = WriteSet::new();
        ws.push(t("a"), Key::single(1), WsOp::Put(vec![Value::Int(1)]));
        ws.push(t("a"), Key::single(1), WsOp::Put(vec![Value::Int(2)]));
        assert_eq!(ws.len(), 1);
        match &ws.entries()[0].op {
            WsOp::Put(row) => assert_eq!(row[0], Value::Int(2)),
            WsOp::Delete => panic!("expected put"),
        }
    }

    #[test]
    fn delete_after_put_keeps_delete() {
        let mut ws = WriteSet::new();
        ws.push(t("a"), Key::single(1), WsOp::Put(vec![Value::Int(1)]));
        ws.push(t("a"), Key::single(1), WsOp::Delete);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.entries()[0].op, WsOp::Delete);
    }

    #[test]
    fn intersection_requires_same_table_and_key() {
        let mut a = WriteSet::new();
        a.push(t("x"), Key::single(1), WsOp::Delete);
        let mut b = WriteSet::new();
        b.push(t("y"), Key::single(1), WsOp::Delete);
        assert!(!a.intersects(&b));
        b.push(t("x"), Key::single(1), WsOp::Delete);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn empty_writesets_never_intersect() {
        let a = WriteSet::new();
        let mut b = WriteSet::new();
        b.push(t("x"), Key::single(1), WsOp::Delete);
        assert!(!a.intersects(&b));
        assert!(!a.intersects(&WriteSet::new()));
    }

    #[test]
    fn display_lists_tuples() {
        let mut ws = WriteSet::new();
        ws.push(t("stock"), Key::single(3), WsOp::Put(vec![]));
        assert!(ws.to_string().contains("stock:(3)"));
    }
}
