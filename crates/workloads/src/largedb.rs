//! The "large database" workload of §6.2.
//!
//! Paper parameters: a 1.1 GB database with 10 tables; two transaction
//! types — an update transaction with 10 update operations and a query
//! "with medium execution requirements"; mix 20 % updates / 80 % queries;
//! the application is "read intensive and highly I/O bound".
//!
//! Our tables are row-scaled (the I/O weight lives in the cost model, see
//! the fig6 harness: large per-row scan costs and expensive point I/O make
//! the database behave disk-bound). The query scans a value range of one
//! table (a few hundred rows of simulated I/O); the update transaction
//! touches 10 random rows spread over the tables.

use crate::Workload;
use rand::rngs::SmallRng;
use rand::Rng;
use sirep_common::DbError;
use sirep_core::TxnTemplate;
use sirep_storage::Database;

#[derive(Debug, Clone)]
pub struct LargeDb {
    pub tables: usize,
    pub rows_per_table: i64,
    /// Fraction of update transactions (paper: 0.2).
    pub update_fraction: f64,
    /// Rows the medium query touches.
    pub query_span: i64,
    /// Generate `grp = X` equality queries instead of ranges — lets a
    /// secondary index on `grp` serve them (the index ablation; the paper
    /// ran without indexes).
    pub equality_queries: bool,
}

impl Default for LargeDb {
    fn default() -> Self {
        LargeDb {
            tables: 10,
            rows_per_table: 5_000,
            update_fraction: 0.2,
            query_span: 250,
            equality_queries: false,
        }
    }
}

impl LargeDb {
    fn table_name(&self, t: usize) -> String {
        format!("big{t}")
    }

    /// DDL creating a secondary index on each table's `grp` column (what
    /// the paper's setup deliberately left out).
    pub fn index_ddl(&self) -> Vec<String> {
        (0..self.tables).map(|t| format!("CREATE INDEX ON {} (grp)", self.table_name(t))).collect()
    }
}

impl Workload for LargeDb {
    fn name(&self) -> &'static str {
        "largedb-20-80"
    }

    fn ddl(&self) -> Vec<String> {
        (0..self.tables)
            .map(|t| {
                format!(
                    "CREATE TABLE {} (id INT, grp INT, val FLOAT, pad TEXT, PRIMARY KEY (id))",
                    self.table_name(t)
                )
            })
            .collect()
    }

    fn populate(&self, db: &Database) -> Result<(), DbError> {
        for t in 0..self.tables {
            let name = self.table_name(t);
            // Batch inserts in chunks of one transaction per 500 rows: much
            // faster than one commit per row at identical final state.
            let mut id = 1;
            while id <= self.rows_per_table {
                let txn = db.begin()?;
                let chunk_end = (id + 499).min(self.rows_per_table);
                for i in id..=chunk_end {
                    sirep_sql::execute_sql(
                        db,
                        &txn,
                        &format!(
                            "INSERT INTO {name} VALUES ({i}, {grp}, {val:.3}, 'padpadpadpadpad')",
                            grp = i % 100,
                            val = (i % 1000) as f64 / 7.0
                        ),
                    )?;
                }
                txn.commit()?;
                id = chunk_end + 1;
            }
        }
        Ok(())
    }

    fn next(&self, rng: &mut SmallRng, _client: usize) -> TxnTemplate {
        if rng.gen_bool(self.update_fraction) {
            // 10 single-row updates spread over the tables.
            let mut statements = Vec::with_capacity(10);
            let mut tables = Vec::new();
            for _ in 0..10 {
                let t = rng.gen_range(0..self.tables);
                let name = self.table_name(t);
                let id = rng.gen_range(1..=self.rows_per_table);
                statements.push(format!("UPDATE {name} SET val = val + 1.0 WHERE id = {id}"));
                if !tables.contains(&name) {
                    tables.push(name);
                }
            }
            TxnTemplate { statements, tables, readonly: false }
        } else if self.equality_queries {
            // One group per query: indexable (the ablation configuration).
            let t = rng.gen_range(0..self.tables);
            let name = self.table_name(t);
            let grp = rng.gen_range(0..100);
            TxnTemplate {
                statements: vec![format!(
                    "SELECT COUNT(*), SUM(val), AVG(val) FROM {name} WHERE grp = {grp}"
                )],
                tables: vec![name],
                readonly: true,
            }
        } else {
            // Medium query: range scan over `grp` of one table.
            let t = rng.gen_range(0..self.tables);
            let name = self.table_name(t);
            let lo = rng.gen_range(0..95);
            let span =
                (self.query_span as f64 / (self.rows_per_table as f64 / 100.0)).ceil() as i64;
            TxnTemplate {
                statements: vec![format!(
                    "SELECT COUNT(*), SUM(val), AVG(val) FROM {name} WHERE grp >= {lo} AND grp < {hi}",
                    hi = lo + span.max(1)
                )],
                tables: vec![name],
                readonly: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> LargeDb {
        LargeDb {
            tables: 3,
            rows_per_table: 200,
            update_fraction: 0.2,
            query_span: 20,
            ..LargeDb::default()
        }
    }

    #[test]
    fn populate_and_run() {
        let w = small();
        let db = Database::in_memory();
        for ddl in w.ddl() {
            let t = db.begin().unwrap();
            sirep_sql::execute_sql(&db, &t, &ddl).unwrap();
            t.commit().unwrap();
        }
        w.populate(&db).unwrap();
        assert_eq!(db.table_len("big0"), 200);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let tmpl = w.next(&mut rng, 0);
            let t = db.begin().unwrap();
            for sql in &tmpl.statements {
                sirep_sql::execute_sql(&db, &t, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            }
            t.commit().unwrap();
        }
    }

    #[test]
    fn mix_is_20_80() {
        let w = LargeDb::default();
        let mut rng = SmallRng::seed_from_u64(9);
        let updates = (0..2000).filter(|_| !w.next(&mut rng, 0).readonly).count() as f64 / 2000.0;
        assert!((0.15..0.25).contains(&updates), "update fraction {updates}");
    }

    #[test]
    fn update_txn_has_ten_statements() {
        let w = LargeDb::default();
        let mut rng = SmallRng::seed_from_u64(1);
        loop {
            let t = w.next(&mut rng, 0);
            if !t.readonly {
                assert_eq!(t.statements.len(), 10);
                break;
            }
        }
    }
}
