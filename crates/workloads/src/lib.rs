//! # sirep-workloads
//!
//! The three workloads of the paper's evaluation (§6) plus the closed-loop
//! load generator that drives them:
//!
//! - [`Tpcw`] — TPC-W bookstore, ordering mix (Fig. 5);
//! - [`LargeDb`] — 10-table I/O-bound database, 20/80 update/query mix
//!   (Fig. 6);
//! - [`UpdateIntensive`] — small database, 100 % update transactions of 10
//!   updates each (Fig. 7);
//! - [`runner`] — clients submitting statements back-to-back inside a
//!   transaction and sleeping between transactions to hit a target
//!   system-wide load, exactly as §6 describes.
//!
//! Workloads produce [`TxnTemplate`]s so the same generator can drive both
//! the statement-transparent systems (SI-Rep, SRCA, centralized) and the
//! [20] baseline that needs whole pre-declared transactions.

pub mod largedb;
pub mod runner;
pub mod tpcw;
pub mod updint;

use rand::rngs::SmallRng;
use sirep_common::DbError;
use sirep_core::TxnTemplate;
use sirep_storage::Database;

pub use largedb::LargeDb;
pub use runner::{run, InteractionStyle, RunConfig, RunResult};
pub use tpcw::Tpcw;
pub use updint::UpdateIntensive;

/// A workload: schema, deterministic population, and a transaction stream.
pub trait Workload: Send + Sync {
    fn name(&self) -> &'static str;
    /// CREATE TABLE statements.
    fn ddl(&self) -> Vec<String>;
    /// Deterministic initial population — must produce identical state at
    /// every replica it is applied to.
    fn populate(&self, db: &Database) -> Result<(), DbError>;
    /// The next transaction for `client`.
    fn next(&self, rng: &mut SmallRng, client: usize) -> TxnTemplate;
}

/// Install a workload's schema + data into an SRCA-Rep cluster.
pub fn setup_cluster(cluster: &sirep_core::Cluster, w: &dyn Workload) -> Result<(), DbError> {
    for ddl in w.ddl() {
        cluster.execute_ddl(&ddl)?;
    }
    cluster.load_with(|db| w.populate(db))
}

/// Install a workload into the centralized baseline.
pub fn setup_centralized(sys: &sirep_core::Centralized, w: &dyn Workload) -> Result<(), DbError> {
    let db = sys.database();
    for ddl in w.ddl() {
        let t = db.begin()?;
        sirep_sql::execute_sql(db, &t, &ddl)?;
        t.commit()?;
    }
    // Bulk load without service-time charges.
    db.cost_model().set_suspended(true);
    let r = w.populate(db);
    db.cost_model().set_suspended(false);
    r
}

/// Install a workload into the centralized SRCA middleware.
pub fn setup_srca(sys: &sirep_core::srca::Srca, w: &dyn Workload) -> Result<(), DbError> {
    for ddl in w.ddl() {
        sys.execute_ddl(&ddl)?;
    }
    sys.load_with(|db| w.populate(db))
}

/// Install a workload into the [20] table-lock baseline.
pub fn setup_tablelock(
    sys: &sirep_core::tablelock::TableLockCluster,
    w: &dyn Workload,
) -> Result<(), DbError> {
    for ddl in w.ddl() {
        sys.execute_ddl(&ddl)?;
    }
    sys.load_with(|db| w.populate(db))
}

#[cfg(test)]
mod runner_tests {
    use super::*;
    use sirep_common::TimeScale;
    use sirep_core::{Centralized, Cluster, ClusterConfig};
    use sirep_storage::CostModel;

    #[test]
    fn runner_drives_centralized_system() {
        let w = UpdateIntensive {
            tables: 3,
            rows_per_table: 200,
            tables_per_txn: 2,
            updates_per_txn: 3,
        };
        let sys = Centralized::new(CostModel::free());
        setup_centralized(&sys, &w).unwrap();
        let mut cfg = RunConfig::quick(4, 500.0);
        cfg.duration_ms = 1_000.0;
        let res = run(&sys, &w, &cfg);
        assert!(res.committed > 0, "no transactions committed");
        assert!(res.update_rt.count() > 0);
        assert!(res.achieved_tps > 0.0);
        assert!(res.csv_row().contains("centralized"));
    }

    #[test]
    fn runner_drives_cluster_with_mixed_workload() {
        let w = LargeDb {
            tables: 2,
            rows_per_table: 100,
            update_fraction: 0.3,
            query_span: 10,
            ..LargeDb::default()
        };
        let cluster = Cluster::new(ClusterConfig::builder().replicas(2).build());
        setup_cluster(&cluster, &w).unwrap();
        let mut cfg = RunConfig::quick(4, 400.0);
        // Mild compression: the cluster does real work per transaction, so
        // an over-compressed clock would leave too few model-ms to commit
        // anything.
        cfg.scale = TimeScale::compressed(10.0);
        cfg.duration_ms = 1_000.0;
        cfg.warmup_ms = 100.0;
        let res = run(&cluster, &w, &cfg);
        assert!(res.committed > 10, "committed = {}", res.committed);
        assert!(res.readonly_rt.count() > 0, "no read-only samples");
        assert!(res.update_rt.count() > 0, "no update samples");
        // Replicas converge after the run.
        assert!(cluster.quiesce(std::time::Duration::from_secs(10)));
        let a = cluster.node(0).database().table_len("big0");
        let b = cluster.node(1).database().table_len("big0");
        assert_eq!(a, b);
    }

    #[test]
    fn runner_link_latency_increases_response_time() {
        let w = UpdateIntensive {
            tables: 2,
            rows_per_table: 100,
            tables_per_txn: 1,
            updates_per_txn: 2,
        };
        let sys = Centralized::new(CostModel::free());
        setup_centralized(&sys, &w).unwrap();
        let mut cfg = RunConfig::quick(2, 100.0);
        cfg.duration_ms = 600.0;
        cfg.scale = TimeScale::compressed(100.0);
        let fast = run(&sys, &w, &cfg);
        cfg.link_ms = 5.0; // 3 statements incl. commit → ≥ 30 model ms RT
        let slow = run(&sys, &w, &cfg);
        assert!(
            slow.update_rt.mean() > fast.update_rt.mean() + 20.0,
            "link latency not reflected: fast={} slow={}",
            fast.update_rt.mean(),
            slow.update_rt.mean()
        );
    }
}
