//! The closed-loop load generator.
//!
//! §6 of the paper: *"In each test run a certain number of clients are
//! connected to one middleware replica. Within a transaction, a client
//! submits the next SQL statement immediately after receiving the previous
//! one, but it sleeps between submitting two different transactions in
//! order to achieve the desired system wide load. All tests were run until
//! a 95/5 confidence interval was achieved."*
//!
//! Each client thread alternates: run one transaction (statement by
//! statement for SI-Rep-style systems, one request for the [20] baseline),
//! then sleep so the fleet's aggregate submission rate matches the target
//! load. Response times are recorded in model milliseconds, separately for
//! update and read-only transactions — the two series of Fig. 5.

use crate::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirep_common::{Histogram, Metrics, OnlineStats, StageSnapshot, TimeScale};
use sirep_core::{Connection, System, TxnTemplate};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How clients talk to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionStyle {
    /// One client↔middleware round trip per SQL statement plus one for the
    /// commit (SI-Rep, SRCA, centralized — the transparent JDBC style).
    PerStatement,
    /// One round trip per transaction (the [20] baseline's parametrized
    /// requests).
    PerTransaction,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub clients: usize,
    /// Target system-wide load in transactions per model second.
    pub target_tps: f64,
    /// Measurement window, model milliseconds.
    pub duration_ms: f64,
    /// Warm-up discarded before measuring, model milliseconds.
    pub warmup_ms: f64,
    pub scale: TimeScale,
    /// One-way client↔middleware latency, model milliseconds.
    pub link_ms: f64,
    pub style: InteractionStyle,
    /// Retries after forced aborts before giving a transaction up.
    pub max_retries: usize,
    pub seed: u64,
}

impl RunConfig {
    pub fn quick(clients: usize, target_tps: f64) -> RunConfig {
        RunConfig {
            clients,
            target_tps,
            duration_ms: 2_000.0,
            warmup_ms: 200.0,
            scale: TimeScale::TEST_FAST,
            link_ms: 0.0,
            style: InteractionStyle::PerStatement,
            max_retries: 5,
            seed: 42,
        }
    }
}

/// Aggregated result of one load point.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub system: String,
    pub workload: String,
    pub target_tps: f64,
    /// Response time of committed update transactions, model ms.
    pub update_rt: OnlineStats,
    /// Response time of committed read-only transactions, model ms.
    pub readonly_rt: OnlineStats,
    pub update_hist: Histogram,
    pub readonly_hist: Histogram,
    pub committed: u64,
    pub forced_aborts: u64,
    /// Transactions that exhausted their retries.
    pub given_up: u64,
    /// Achieved committed throughput, txns per model second.
    pub achieved_tps: f64,
    /// System-internal protocol counters at the end of the run.
    pub metrics: Metrics,
    /// Per-stage lifecycle latency histograms at the end of the run (empty
    /// for systems without tracing, or with the `trace` feature off).
    pub stages: StageSnapshot,
}

impl RunResult {
    pub fn abort_rate(&self) -> f64 {
        self.forced_aborts as f64 / (self.forced_aborts + self.committed).max(1) as f64
    }

    /// The per-stage p50/p95/p99 breakdown table
    /// ([`StageSnapshot::breakdown_table`]), wall milliseconds.
    pub fn breakdown_table(&self) -> String {
        self.stages.breakdown_table()
    }

    /// One CSV row: target, achieved, mean RTs, p95s, abort rate.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.1},{:.1},{:.2},{:.2},{:.2},{:.2},{:.4}",
            self.system,
            self.workload,
            self.target_tps,
            self.achieved_tps,
            self.update_rt.mean(),
            self.update_hist.quantile(0.95),
            self.readonly_rt.mean(),
            self.readonly_hist.quantile(0.95),
            self.abort_rate()
        )
    }

    pub fn csv_header() -> &'static str {
        "system,workload,target_tps,achieved_tps,update_mean_ms,update_p95_ms,\
         readonly_mean_ms,readonly_p95_ms,abort_rate"
    }
}

struct ClientTally {
    update_rt: OnlineStats,
    readonly_rt: OnlineStats,
    update_hist: Histogram,
    readonly_hist: Histogram,
    committed: u64,
    forced_aborts: u64,
    given_up: u64,
}

impl ClientTally {
    fn new() -> ClientTally {
        ClientTally {
            update_rt: OnlineStats::new(),
            readonly_rt: OnlineStats::new(),
            update_hist: Histogram::new(),
            readonly_hist: Histogram::new(),
            committed: 0,
            forced_aborts: 0,
            given_up: 0,
        }
    }
}

/// Run one transaction end to end; returns Ok(response-time wall duration)
/// of the committed attempt.
fn run_txn(
    conn: &mut Box<dyn Connection>,
    tmpl: &TxnTemplate,
    cfg: &RunConfig,
    tally: &mut ClientTally,
    record: bool,
) -> bool {
    let rt_link = 2.0 * cfg.link_ms;
    for _attempt in 0..=cfg.max_retries {
        let start = Instant::now();
        let ok = match cfg.style {
            InteractionStyle::PerTransaction => {
                cfg.scale.sleep(rt_link);
                conn.run_template(tmpl)
            }
            InteractionStyle::PerStatement => (|| {
                for sql in &tmpl.statements {
                    cfg.scale.sleep(rt_link);
                    conn.execute(sql)?;
                }
                cfg.scale.sleep(rt_link);
                conn.commit()
            })(),
        };
        match ok {
            Ok(()) => {
                if record {
                    let rt_ms = cfg.scale.model_ms(start.elapsed());
                    let (stats, hist) = if tmpl.readonly {
                        (&mut tally.readonly_rt, &mut tally.readonly_hist)
                    } else {
                        (&mut tally.update_rt, &mut tally.update_hist)
                    };
                    stats.record(rt_ms);
                    hist.record(rt_ms);
                    tally.committed += 1;
                }
                return true;
            }
            Err(e) => {
                conn.rollback();
                if let sirep_common::DbError::Aborted(reason) = &e {
                    if reason.is_retryable() {
                        if record {
                            tally.forced_aborts += 1;
                        }
                        continue;
                    }
                }
                // Statement error or unrecoverable: give up on this txn.
                if record {
                    tally.given_up += 1;
                }
                return false;
            }
        }
    }
    if record {
        tally.given_up += 1;
    }
    false
}

/// Drive `system` with `workload` at one load point.
pub fn run(system: &dyn System, workload: &dyn Workload, cfg: &RunConfig) -> RunResult {
    assert!(cfg.clients > 0 && cfg.target_tps > 0.0);
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    // Mean think gap per client so the fleet submits at target_tps.
    let gap_ms = cfg.clients as f64 * 1000.0 / cfg.target_tps;

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..cfg.clients {
            let stop = Arc::clone(&stop);
            let measuring = Arc::clone(&measuring);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (client as u64) << 20);
                let mut tally = ClientTally::new();
                let Ok(mut conn) = system.connect() else { return tally };
                // Stagger client start so arrivals don't align.
                cfg.scale.sleep(rng.gen_range(0.0..gap_ms));
                while !stop.load(Ordering::Relaxed) {
                    let tmpl = workload.next(&mut rng, client);
                    let record = measuring.load(Ordering::Relaxed);
                    let t0 = Instant::now();
                    run_txn(&mut conn, &tmpl, &cfg, &mut tally, record);
                    // Think time: target the aggregate submission rate.
                    let elapsed_ms = cfg.scale.model_ms(t0.elapsed());
                    let jitter = rng.gen_range(0.5..1.5);
                    let think = (gap_ms * jitter - elapsed_ms).max(0.0);
                    if think > 0.0 {
                        cfg.scale.sleep(think);
                    }
                }
                tally
            }));
        }
        // Warm-up, then measure.
        cfg.scale.sleep(cfg.warmup_ms);
        measuring.store(true, Ordering::Relaxed);
        cfg.scale.sleep(cfg.duration_ms);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    let mut update_rt = OnlineStats::new();
    let mut readonly_rt = OnlineStats::new();
    let mut update_hist = Histogram::new();
    let mut readonly_hist = Histogram::new();
    let mut committed = 0;
    let mut forced_aborts = 0;
    let mut given_up = 0;
    for t in &tallies {
        update_rt.merge(&t.update_rt);
        readonly_rt.merge(&t.readonly_rt);
        update_hist.merge(&t.update_hist);
        readonly_hist.merge(&t.readonly_hist);
        committed += t.committed;
        forced_aborts += t.forced_aborts;
        given_up += t.given_up;
    }
    let achieved_tps = committed as f64 / (cfg.duration_ms / 1000.0);
    RunResult {
        system: system.name().to_owned(),
        workload: workload.name().to_owned(),
        target_tps: cfg.target_tps,
        update_rt,
        readonly_rt,
        update_hist,
        readonly_hist,
        committed,
        forced_aborts,
        given_up,
        achieved_tps,
        metrics: system.metrics(),
        stages: system.stages(),
    }
}
