//! The TPC-W bookstore workload, **ordering mix** (§6.1 of the paper:
//! "50 % of update transactions and 50 % of read-only transactions",
//! 1000 items, 40 emulated browsers).
//!
//! The full TPC-W specification drives a web storefront; the paper (like
//! most database-replication studies) uses only its database transactions.
//! We implement the eight tables and a transaction set expressed in our SQL
//! subset whose read/write mix matches the ordering mix:
//!
//! update: `buy_confirm` (order placement: stock updates + order +
//! order lines + credit-card record), `cart_update` (item stock
//! adjustment), `admin_update` (price/thumbnail change);
//! read-only: `home`, `product_detail`, `best_sellers`, `new_products`,
//! `order_inquiry`.
//!
//! Population is scaled relative to the TPC-W rules (the paper's 200 MB
//! instance would dominate in-memory setup time without changing conflict
//! behaviour); scaling factors are documented in EXPERIMENTS.md.

use crate::Workload;
use rand::rngs::SmallRng;
use rand::Rng;
use sirep_common::DbError;
use sirep_core::TxnTemplate;
use sirep_storage::Database;

/// TPC-W ordering-mix workload.
#[derive(Debug, Clone)]
pub struct Tpcw {
    pub items: i64,
    pub customers: i64,
    pub initial_orders: i64,
    pub countries: i64,
    pub authors: i64,
}

impl Default for Tpcw {
    fn default() -> Self {
        // Paper configuration: 1000 items, 40 EBs. Customer/order counts
        // scaled down from the TPC-W rules (2880/EB) to keep in-memory
        // population fast; conflict behaviour is governed by the item table
        // which is kept at full size.
        Tpcw { items: 1000, customers: 1440, initial_orders: 1296, countries: 92, authors: 250 }
    }
}

impl Tpcw {
    fn insert(db: &Database, sql: &str) -> Result<(), DbError> {
        let t = db.begin()?;
        sirep_sql::execute_sql(db, &t, sql)?;
        t.commit()?;
        Ok(())
    }
}

impl Workload for Tpcw {
    fn name(&self) -> &'static str {
        "tpcw-ordering"
    }

    fn ddl(&self) -> Vec<String> {
        vec![
            "CREATE TABLE customer (c_id INT, c_uname TEXT, c_discount FLOAT, c_balance FLOAT, \
             c_addr_id INT, PRIMARY KEY (c_id))"
                .into(),
            "CREATE TABLE address (addr_id INT, addr_street TEXT, addr_city TEXT, addr_co_id INT, \
             PRIMARY KEY (addr_id))"
                .into(),
            "CREATE TABLE country (co_id INT, co_name TEXT, co_exchange FLOAT, \
             PRIMARY KEY (co_id))"
                .into(),
            "CREATE TABLE author (a_id INT, a_fname TEXT, a_lname TEXT, PRIMARY KEY (a_id))".into(),
            "CREATE TABLE item (i_id INT, i_title TEXT, i_a_id INT, i_cost FLOAT, i_stock INT, \
             i_pub_date INT, i_total_sold INT, PRIMARY KEY (i_id))"
                .into(),
            "CREATE TABLE orders (o_id INT, o_c_id INT, o_date INT, o_total FLOAT, o_status TEXT, \
             PRIMARY KEY (o_id))"
                .into(),
            "CREATE TABLE order_line (ol_o_id INT, ol_id INT, ol_i_id INT, ol_qty INT, \
             ol_discount FLOAT, PRIMARY KEY (ol_o_id, ol_id))"
                .into(),
            "CREATE TABLE cc_xacts (cx_o_id INT, cx_type TEXT, cx_amount FLOAT, cx_co_id INT, \
             PRIMARY KEY (cx_o_id))"
                .into(),
        ]
    }

    fn populate(&self, db: &Database) -> Result<(), DbError> {
        // Deterministic population (identical at every replica).
        for co in 1..=self.countries {
            Self::insert(
                db,
                &format!("INSERT INTO country VALUES ({co}, 'country{co}', {:.2})", 1.0),
            )?;
        }
        for a in 1..=self.authors {
            Self::insert(db, &format!("INSERT INTO author VALUES ({a}, 'fn{a}', 'ln{a}')"))?;
        }
        for i in 1..=self.items {
            let a = 1 + (i * 7) % self.authors;
            let cost = 5.0 + (i % 100) as f64 * 0.5;
            let stock = 500 + (i % 50) * 10;
            Self::insert(
                db,
                &format!(
                    "INSERT INTO item VALUES ({i}, 'title{i}', {a}, {cost:.2}, {stock}, \
                     {pub_date}, 0)",
                    pub_date = 2000 + (i % 60)
                ),
            )?;
        }
        for c in 1..=self.customers {
            let co = 1 + (c * 3) % self.countries;
            Self::insert(
                db,
                &format!("INSERT INTO address VALUES ({c}, 'street{c}', 'city{c}', {co})"),
            )?;
            let disc = (c % 20) as f64 * 0.005;
            Self::insert(
                db,
                &format!(
                    "INSERT INTO customer VALUES ({c}, 'user{c}', {disc:.3}, {bal:.2}, {c})",
                    bal = (c % 500) as f64
                ),
            )?;
        }
        for o in 1..=self.initial_orders {
            let c = 1 + (o * 11) % self.customers;
            Self::insert(
                db,
                &format!(
                    "INSERT INTO orders VALUES ({o}, {c}, {date}, {total:.2}, 'shipped')",
                    date = 2060 + (o % 5),
                    total = 20.0 + (o % 80) as f64
                ),
            )?;
            for l in 1..=2 {
                let i = 1 + (o * 13 + l * 29) % self.items;
                Self::insert(
                    db,
                    &format!(
                        "INSERT INTO order_line VALUES ({o}, {l}, {i}, {q}, 0.0)",
                        q = 1 + o % 3
                    ),
                )?;
            }
        }
        Ok(())
    }

    fn next(&self, rng: &mut SmallRng, client: usize) -> TxnTemplate {
        // Ordering mix: 50 % updates. Weights within each half roughly
        // follow the TPC-W ordering-mix interaction frequencies.
        let roll = rng.gen_range(0..100);
        match roll {
            // ---- updates (50 %) ----
            0..=29 => self.buy_confirm(rng, client),
            30..=44 => self.cart_update(rng),
            45..=49 => self.admin_update(rng),
            // ---- read-only (50 %) ----
            50..=69 => self.product_detail(rng),
            70..=79 => self.home(rng),
            80..=86 => self.best_sellers(rng),
            87..=93 => self.new_products(rng),
            _ => self.order_inquiry(rng),
        }
    }
}

impl Tpcw {
    fn rand_item(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.items)
    }

    fn rand_customer(&self, rng: &mut SmallRng) -> i64 {
        rng.gen_range(1..=self.customers)
    }

    /// Order placement: the heart of the ordering mix. Reads the customer,
    /// decrements stock of 1–4 items, inserts the order, its lines and the
    /// credit-card transaction.
    fn buy_confirm(&self, rng: &mut SmallRng, client: usize) -> TxnTemplate {
        let c = self.rand_customer(rng);
        // Order ids must be unique across clients and replicas: derive from
        // client id + a per-client counter folded into the random stream.
        let o: i64 = 1_000_000 + (client as i64) * 10_000_000 + rng.gen_range(0..9_999_999);
        let n_lines = rng.gen_range(1..=4);
        let mut statements =
            vec![format!("SELECT c_uname, c_discount, c_balance FROM customer WHERE c_id = {c}")];
        let mut total = 0.0;
        for l in 1..=n_lines {
            let i = self.rand_item(rng);
            let qty = rng.gen_range(1..=3);
            statements.push(format!("SELECT i_cost, i_stock FROM item WHERE i_id = {i}"));
            statements.push(format!(
                "UPDATE item SET i_stock = i_stock - {qty}, i_total_sold = i_total_sold + {qty} \
                 WHERE i_id = {i}"
            ));
            statements.push(format!("INSERT INTO order_line VALUES ({o}, {l}, {i}, {qty}, 0.0)"));
            total += qty as f64 * 20.0;
        }
        statements
            .push(format!("INSERT INTO orders VALUES ({o}, {c}, 2065, {total:.2}, 'pending')"));
        statements.push(format!("INSERT INTO cc_xacts VALUES ({o}, 'VISA', {total:.2}, 1)"));
        TxnTemplate {
            statements,
            tables: vec![
                "customer".into(),
                "item".into(),
                "order_line".into(),
                "orders".into(),
                "cc_xacts".into(),
            ],
            readonly: false,
        }
    }

    /// Shopping-cart refresh: adjust the stock reservation of one item.
    fn cart_update(&self, rng: &mut SmallRng) -> TxnTemplate {
        let i = self.rand_item(rng);
        TxnTemplate {
            statements: vec![
                format!("SELECT i_cost, i_stock FROM item WHERE i_id = {i}"),
                format!("UPDATE item SET i_stock = i_stock - 1 WHERE i_id = {i}"),
            ],
            tables: vec!["item".into()],
            readonly: false,
        }
    }

    /// Administrative price change.
    fn admin_update(&self, rng: &mut SmallRng) -> TxnTemplate {
        let i = self.rand_item(rng);
        TxnTemplate {
            statements: vec![
                format!("SELECT i_cost FROM item WHERE i_id = {i}"),
                format!("UPDATE item SET i_cost = i_cost * 1.01 WHERE i_id = {i}"),
            ],
            tables: vec!["item".into()],
            readonly: false,
        }
    }

    fn home(&self, rng: &mut SmallRng) -> TxnTemplate {
        let c = self.rand_customer(rng);
        let i = self.rand_item(rng);
        TxnTemplate {
            statements: vec![
                format!("SELECT c_uname, c_discount FROM customer WHERE c_id = {c}"),
                format!("SELECT i_title, i_cost FROM item WHERE i_id = {i}"),
            ],
            tables: vec!["customer".into(), "item".into()],
            readonly: true,
        }
    }

    fn product_detail(&self, rng: &mut SmallRng) -> TxnTemplate {
        let i = self.rand_item(rng);
        let a = 1 + (i * 7) % self.authors;
        TxnTemplate {
            statements: vec![
                format!("SELECT i_title, i_cost, i_stock, i_pub_date FROM item WHERE i_id = {i}"),
                format!("SELECT a_fname, a_lname FROM author WHERE a_id = {a}"),
            ],
            tables: vec!["item".into(), "author".into()],
            readonly: true,
        }
    }

    fn best_sellers(&self, _rng: &mut SmallRng) -> TxnTemplate {
        TxnTemplate {
            statements: vec![
                "SELECT i_id, i_title, i_total_sold FROM item ORDER BY i_total_sold DESC LIMIT 50"
                    .into(),
            ],
            tables: vec!["item".into()],
            readonly: true,
        }
    }

    fn new_products(&self, rng: &mut SmallRng) -> TxnTemplate {
        let since = 2000 + rng.gen_range(0..60);
        TxnTemplate {
            statements: vec![format!(
                "SELECT i_id, i_title, i_pub_date FROM item WHERE i_pub_date >= {since} \
                 ORDER BY i_pub_date DESC LIMIT 50"
            )],
            tables: vec!["item".into()],
            readonly: true,
        }
    }

    fn order_inquiry(&self, rng: &mut SmallRng) -> TxnTemplate {
        let o = 1 + rng.gen_range(0..self.initial_orders);
        TxnTemplate {
            statements: vec![
                format!("SELECT o_c_id, o_total, o_status FROM orders WHERE o_id = {o}"),
                format!("SELECT ol_i_id, ol_qty FROM order_line WHERE ol_o_id = {o}"),
            ],
            tables: vec!["orders".into(), "order_line".into()],
            readonly: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ddl_and_population_load() {
        let w = Tpcw { items: 50, customers: 20, initial_orders: 10, countries: 5, authors: 10 };
        let db = Database::in_memory();
        for ddl in w.ddl() {
            let t = db.begin().unwrap();
            sirep_sql::execute_sql(&db, &t, &ddl).unwrap();
            t.commit().unwrap();
        }
        w.populate(&db).unwrap();
        assert_eq!(db.table_len("item"), 50);
        assert_eq!(db.table_len("customer"), 20);
        assert_eq!(db.table_len("orders"), 10);
        assert_eq!(db.table_len("order_line"), 20);
    }

    #[test]
    fn mix_is_roughly_half_updates() {
        let w = Tpcw::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut updates = 0;
        const N: usize = 4000;
        for _ in 0..N {
            if !w.next(&mut rng, 0).readonly {
                updates += 1;
            }
        }
        let frac = updates as f64 / N as f64;
        assert!((0.45..0.55).contains(&frac), "update fraction {frac}");
    }

    #[test]
    fn generated_sql_parses_and_runs() {
        let w = Tpcw { items: 50, customers: 20, initial_orders: 10, countries: 5, authors: 10 };
        let db = Database::in_memory();
        for ddl in w.ddl() {
            let t = db.begin().unwrap();
            sirep_sql::execute_sql(&db, &t, &ddl).unwrap();
            t.commit().unwrap();
        }
        w.populate(&db).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..200 {
            let tmpl = w.next(&mut rng, i % 4);
            let t = db.begin().unwrap();
            for sql in &tmpl.statements {
                sirep_sql::execute_sql(&db, &t, sql)
                    .unwrap_or_else(|e| panic!("{sql} failed: {e}"));
            }
            t.commit().unwrap();
        }
    }

    #[test]
    fn buy_confirm_order_ids_disjoint_across_clients() {
        let w = Tpcw::default();
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(1);
        let a = w.buy_confirm(&mut r1, 0);
        let b = w.buy_confirm(&mut r2, 1);
        // Same RNG stream, different clients → different order ids.
        assert_ne!(a.statements.last(), b.statements.last());
    }
}
