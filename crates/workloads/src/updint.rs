//! The update-intensive stress workload of §6.3.
//!
//! Paper parameters: a very small database (14 MB, 10 tables), **only**
//! update transactions, each performing 10 simple updates; for the [20]
//! comparison each transaction accesses three different tables ("a bit less
//! than the number of tables accessed by a typical transaction in TPC-W").

use crate::Workload;
use rand::rngs::SmallRng;
use rand::Rng;
use sirep_common::DbError;
use sirep_core::TxnTemplate;
use sirep_storage::Database;

#[derive(Debug, Clone)]
pub struct UpdateIntensive {
    pub tables: usize,
    pub rows_per_table: i64,
    /// Distinct tables per transaction (paper: 3).
    pub tables_per_txn: usize,
    /// Updates per transaction (paper: 10).
    pub updates_per_txn: usize,
}

impl Default for UpdateIntensive {
    fn default() -> Self {
        UpdateIntensive {
            tables: 10,
            rows_per_table: 1_000,
            tables_per_txn: 3,
            updates_per_txn: 10,
        }
    }
}

impl UpdateIntensive {
    fn table_name(&self, t: usize) -> String {
        format!("upd{t}")
    }
}

impl Workload for UpdateIntensive {
    fn name(&self) -> &'static str {
        "update-intensive"
    }

    fn ddl(&self) -> Vec<String> {
        (0..self.tables)
            .map(|t| {
                format!(
                    "CREATE TABLE {} (id INT, counter INT, val FLOAT, PRIMARY KEY (id))",
                    self.table_name(t)
                )
            })
            .collect()
    }

    fn populate(&self, db: &Database) -> Result<(), DbError> {
        for t in 0..self.tables {
            let name = self.table_name(t);
            let mut id = 1;
            while id <= self.rows_per_table {
                let txn = db.begin()?;
                let chunk_end = (id + 499).min(self.rows_per_table);
                for i in id..=chunk_end {
                    sirep_sql::execute_sql(
                        db,
                        &txn,
                        &format!("INSERT INTO {name} VALUES ({i}, 0, 0.0)"),
                    )?;
                }
                txn.commit()?;
                id = chunk_end + 1;
            }
        }
        Ok(())
    }

    fn next(&self, rng: &mut SmallRng, _client: usize) -> TxnTemplate {
        // Pick `tables_per_txn` distinct tables, spread the updates over
        // them round-robin.
        let mut chosen: Vec<usize> = Vec::with_capacity(self.tables_per_txn);
        while chosen.len() < self.tables_per_txn.min(self.tables) {
            let t = rng.gen_range(0..self.tables);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        let mut statements = Vec::with_capacity(self.updates_per_txn);
        for u in 0..self.updates_per_txn {
            let t = chosen[u % chosen.len()];
            let id = rng.gen_range(1..=self.rows_per_table);
            statements.push(format!(
                "UPDATE {} SET counter = counter + 1 WHERE id = {id}",
                self.table_name(t)
            ));
        }
        TxnTemplate {
            statements,
            tables: chosen.iter().map(|&t| self.table_name(t)).collect(),
            readonly: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn everything_is_an_update() {
        let w = UpdateIntensive::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let t = w.next(&mut rng, 0);
            assert!(!t.readonly);
            assert_eq!(t.statements.len(), 10);
            assert_eq!(t.tables.len(), 3);
        }
    }

    #[test]
    fn populate_and_execute() {
        let w = UpdateIntensive {
            tables: 3,
            rows_per_table: 50,
            tables_per_txn: 2,
            updates_per_txn: 4,
        };
        let db = Database::in_memory();
        for ddl in w.ddl() {
            let t = db.begin().unwrap();
            sirep_sql::execute_sql(&db, &t, &ddl).unwrap();
            t.commit().unwrap();
        }
        w.populate(&db).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..30 {
            let tmpl = w.next(&mut rng, 0);
            let t = db.begin().unwrap();
            for sql in &tmpl.statements {
                sirep_sql::execute_sql(&db, &t, sql).unwrap();
            }
            t.commit().unwrap();
        }
    }
}
