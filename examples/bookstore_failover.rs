//! Failover demo (§5.4 of the paper): a TPC-W-style bookstore runs on a
//! 3-replica cluster; clients connect through the failover driver; one
//! replica crashes mid-run. Committed transactions survive, clients
//! reconnect automatically, and in-doubt commits are resolved by
//! transaction identifier.
//!
//! Run with: `cargo run --example bookstore_failover`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use si_rep::core::{Cluster, ClusterConfig, Connection};
use si_rep::driver::{Driver, DriverConfig, Policy};
use si_rep::workloads::{setup_cluster, Tpcw, Workload};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cluster = Arc::new(Cluster::new(ClusterConfig::builder().replicas(3).build()));
    let workload =
        Tpcw { items: 200, customers: 100, initial_orders: 50, countries: 10, authors: 30 };
    setup_cluster(&cluster, &workload).expect("setup");
    let driver = Arc::new(Driver::new(
        Arc::clone(&cluster),
        DriverConfig::builder().policy(Policy::RoundRobin).build(),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let failovers = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for client in 0..6usize {
            let driver = Arc::clone(&driver);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let lost = Arc::clone(&lost);
            let failovers = Arc::clone(&failovers);
            let workload = workload.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(client as u64);
                let mut conn = driver.connect().expect("connect");
                while !stop.load(Ordering::Relaxed) {
                    let tmpl = workload.next(&mut rng, client);
                    let before = conn.failovers();
                    let r = (|| {
                        for sql in &tmpl.statements {
                            conn.execute(sql)?;
                        }
                        conn.commit()
                    })();
                    match r {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            conn.rollback();
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    failovers.fetch_add((conn.failovers() - before) as u64, Ordering::Relaxed);
                }
            });
        }

        // Let the store run, then pull the plug on replica 0.
        std::thread::sleep(Duration::from_millis(300));
        println!("crashing replica 0 ...");
        cluster.crash(0);
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    cluster.quiesce(Duration::from_secs(10));
    println!(
        "committed: {}  retried-after-crash: {}  failovers: {}",
        committed.load(Ordering::Relaxed),
        lost.load(Ordering::Relaxed),
        failovers.load(Ordering::Relaxed)
    );

    // Every surviving replica holds the same committed state.
    let count = |k: usize| {
        let mut s = cluster.session(k);
        let r = s.execute("SELECT COUNT(*) FROM orders").expect("count");
        let n = r.rows()[0][0].as_int().unwrap();
        s.commit().unwrap();
        n
    };
    let (n1, n2) = (count(1), count(2));
    println!("orders at replica 1: {n1}, replica 2: {n2}");
    assert_eq!(n1, n2, "survivors diverged!");
    assert!(cluster.alive().len() == 2);
    println!("bookstore_failover OK");
}
