//! Quickstart: bring up a 3-replica SI-Rep cluster, write through one
//! replica, read it back from another, and look at the protocol counters.
//!
//! Run with: `cargo run --example quickstart`

use si_rep::core::{Cluster, ClusterConfig, Connection};
use std::time::Duration;

fn main() {
    // A 3-replica cluster: each replica is a middleware/database pair, all
    // connected by uniform-reliable total-order multicast.
    let cluster = Cluster::new(ClusterConfig::builder().replicas(3).build());

    // Schemas are installed identically at every replica before the run.
    cluster
        .execute_ddl("CREATE TABLE accounts (id INT, owner TEXT, balance FLOAT, PRIMARY KEY (id))")
        .expect("ddl");

    // Connect to replica 0 (the driver crate adds discovery + failover; a
    // plain session pins to one replica like a JDBC connection).
    let mut alice = cluster.session(0);
    alice.execute("INSERT INTO accounts VALUES (1, 'alice', 100.0)").expect("insert");
    alice.execute("INSERT INTO accounts VALUES (2, 'bob', 50.0)").expect("insert");
    // The commit extracts the writeset, certifies it and multicasts it to
    // every replica; it returns once committed at the local replica.
    alice.commit().expect("commit");

    // A transfer: reads and writes in one snapshot-isolated transaction.
    alice.execute("UPDATE accounts SET balance = balance - 25 WHERE id = 1").expect("debit");
    alice.execute("UPDATE accounts SET balance = balance + 25 WHERE id = 2").expect("credit");
    alice.commit().expect("transfer commit");

    // Lazily-applied writesets reach the other replicas within moments.
    cluster.quiesce(Duration::from_secs(5));
    let mut bob = cluster.session(2);
    let rows = bob
        .execute("SELECT id, owner, balance FROM accounts ORDER BY id")
        .expect("select")
        .rows()
        .to_vec();
    println!("state as seen from replica 2:");
    for r in &rows {
        println!("  account {} ({}) balance {}", r[0], r[1], r[2]);
    }
    bob.commit().expect("ro commit");
    assert_eq!(rows[0][2], si_rep::storage::Value::Float(75.0));
    assert_eq!(rows[1][2], si_rep::storage::Value::Float(75.0));

    // The full observability report: counters, queue-depth gauges with
    // their high-water marks, stage latencies, and the 1-copy-SI auditor's
    // verdict. (With `--no-default-features` the gauges and journal compile
    // to no-ops and read as zero/empty.)
    let report = cluster.metrics();
    println!("\nprotocol counters: {}", report.summary());
    println!("queue-depth gauges (current / high-water):");
    for (name, reading) in report.gauges.fields() {
        println!("  {name:<18} {:>4} / {:>4}", reading.current, reading.high_water);
    }
    assert!(report.violations.is_empty(), "auditor: {:?}", report.violations);
    println!("auditor: clean (0 invariant violations)");

    // Each replica keeps a journal of typed protocol events; the cluster can
    // render them as a Perfetto/Chrome trace (see README: load the JSON at
    // ui.perfetto.dev), and the report renders as Prometheus text.
    let events: usize = cluster.journal_events().iter().map(|(_, v)| v.len()).sum();
    println!("journal: {events} protocol events across the cluster");
    println!("perfetto trace: {} bytes of JSON", cluster.perfetto_json().len());
    println!("prometheus text: {} lines", report.prometheus_text().lines().count());
    println!("quickstart OK");
}
