//! Read scale-out demo (the intuition behind Fig. 6): a read-intensive
//! workload on 1, 3 and 6 replicas. Queries spread across replicas while
//! updates only ship writesets, so throughput at a fixed response-time
//! budget grows with the cluster.
//!
//! Run with: `cargo run --release --example scaleout_reads`

use si_rep::common::TimeScale;
use si_rep::core::{Cluster, ClusterConfig, ReplicationMode};
use si_rep::gcs::GroupConfig;
use si_rep::storage::CostModel;
use si_rep::workloads::{run, setup_cluster, InteractionStyle, LargeDb, RunConfig};

fn main() {
    let scale = TimeScale::compressed(25.0);
    let cost = CostModel {
        scale,
        servers: 1,
        begin_ms: 0.0,
        read_ms: 3.0,
        scan_row_ms: 0.05,
        write_ms: 5.0,
        apply_write_ms: 1.2,
        commit_entry_ms: 1.0,
        commit_flush_ms: 4.0,
        stmt_overhead_ms: 1.0,
    };
    let workload = LargeDb {
        tables: 4,
        rows_per_table: 2_000,
        update_fraction: 0.2,
        query_span: 100,
        ..LargeDb::default()
    };
    let load = 14.0;

    println!("read-intensive workload (20/80) at {load} tps offered:");
    println!("{:>9} {:>12} {:>14} {:>14}", "replicas", "achieved", "query RT ms", "update RT ms");
    for replicas in [1usize, 3, 6] {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(replicas)
                .mode(ReplicationMode::SrcaRep)
                .cost(cost.clone())
                .gcs(GroupConfig::lan(scale))
                .appliers(4)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        let cfg = RunConfig {
            clients: 40,
            target_tps: load,
            duration_ms: 6_000.0,
            warmup_ms: 1_000.0,
            scale,
            link_ms: 0.3,
            style: InteractionStyle::PerStatement,
            max_retries: 5,
            seed: 7,
        };
        let r = run(&cluster, &workload, &cfg);
        println!(
            "{:>9} {:>12.1} {:>14.1} {:>14.1}",
            replicas,
            r.achieved_tps,
            r.readonly_rt.mean(),
            r.update_rt.mean()
        );
    }
    println!("\n(more replicas → queries spread out → lower response times / higher ceiling)");
}
