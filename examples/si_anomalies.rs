//! Snapshot-isolation semantics, end to end:
//!
//! 1. **lost updates are prevented** — two concurrent increments of the
//!    same row at different replicas: one commits, one aborts
//!    (first-committer-wins certification);
//! 2. **write skew is allowed** — SI, not serializability, exactly as the
//!    paper's Definition 1 permits;
//! 3. the recorded execution passes the **1-copy-SI checker** built from
//!    the paper's Definition 3 / Theorem 1;
//! 4. the §4.3.2 counterexample (why SRCA-Opt is not 1-copy-SI) is shown
//!    to be rejected by the same checker.
//!
//! Run with: `cargo run --example si_anomalies`

use si_rep::core::{
    check_one_copy_si, Cluster, ClusterConfig, Connection, Op, ReplicatedExecution, TxSpec,
    Violation,
};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    // --- 1 + 2: behaviour on a live cluster --------------------------------
    let cfg = ClusterConfig::builder().replicas(2).track_history(true).build();
    let cluster = Cluster::new(cfg);
    cluster.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    {
        let mut s = cluster.session(0);
        s.execute("INSERT INTO kv VALUES (1, 100)").unwrap();
        s.execute("INSERT INTO kv VALUES (2, 100)").unwrap();
        s.commit().unwrap();
    }
    cluster.quiesce(Duration::from_secs(5));

    // Lost update prevented: both increment k=1 concurrently.
    let mut a = cluster.session(0);
    let mut b = cluster.session(1);
    a.execute("UPDATE kv SET v = v + 10 WHERE k = 1").unwrap();
    b.execute("UPDATE kv SET v = v + 10 WHERE k = 1").unwrap();
    let (ra, rb) = (a.commit(), b.commit());
    println!("concurrent increments: a={ra:?}, b={rb:?}");
    assert!(ra.is_ok() ^ rb.is_ok(), "exactly one must win");

    // Write skew allowed: disjoint writes after overlapping reads.
    cluster.quiesce(Duration::from_secs(5));
    let mut a = cluster.session(0);
    let mut b = cluster.session(1);
    a.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    a.execute("SELECT v FROM kv WHERE k = 2").unwrap();
    b.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    b.execute("SELECT v FROM kv WHERE k = 2").unwrap();
    a.execute("UPDATE kv SET v = 0 WHERE k = 1").unwrap();
    b.execute("UPDATE kv SET v = 0 WHERE k = 2").unwrap();
    a.commit().expect("write skew side A");
    b.commit().expect("write skew side B");
    println!("write skew committed on both sides (SI, not serializability)");

    // --- 3: the recorded execution is 1-copy-SI -----------------------------
    cluster.quiesce(Duration::from_secs(5));
    let (specs, exec) = cluster.collect_history();
    let witness = check_one_copy_si(&specs, &exec).expect("execution must be 1-copy-SI");
    println!(
        "1-copy-SI verified over {} committed transactions (witness schedule: {} events)",
        specs.len(),
        witness.len()
    );

    // --- 4: the §4.3.2 counterexample is caught -----------------------------
    use Op::{Begin as B, Commit as C};
    let mut txs = BTreeMap::new();
    txs.insert(1, TxSpec::new([] as [&str; 0], ["x"])); // T_i
    txs.insert(2, TxSpec::new([] as [&str; 0], ["y"])); // T_j
    txs.insert(3, TxSpec::new(["x", "y"], [] as [&str; 0])); // T_a local at R0
    txs.insert(4, TxSpec::new(["x", "y"], [] as [&str; 0])); // T_b local at R1
    let bad = ReplicatedExecution {
        schedules: vec![
            vec![B(1), C(1), B(3), C(3), B(2), C(2)], // R0: ci < ba < cj
            vec![B(2), C(2), B(4), C(4), B(1), C(1)], // R1: cj < bb < ci
        ],
        locality: [(1, 0), (2, 1), (3, 0), (4, 1)].into_iter().collect(),
    };
    match check_one_copy_si(&txs, &bad) {
        Err(Violation::NoGlobalSchedule { cycle_hint }) => {
            println!("§4.3.2 counterexample correctly rejected (cycle: {cycle_hint})");
        }
        other => panic!("checker failed to reject the counterexample: {other:?}"),
    }
    println!("si_anomalies OK");
}
