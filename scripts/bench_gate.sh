#!/usr/bin/env bash
# Bench smoke gate: compare a fresh e2e bench run against the committed
# baseline (results/BENCH_e2e.json). Rows are matched on
# (replicas, clients, read_pct); any matched row whose committed-tps drops
# by more than BENCH_GATE_PCT percent (default 30) fails the gate.
#
# Usage: scripts/bench_gate.sh <fresh.json> [baseline.json]
# The tolerance is deliberately wide: it catches "group commit stopped
# batching"-class collapses, not run-to-run scheduler noise.
set -euo pipefail
FRESH=${1:?usage: bench_gate.sh <fresh.json> [baseline.json]}
BASE=${2:-results/BENCH_e2e.json}

python3 - "$FRESH" "$BASE" <<'PY'
import json, os, sys

fresh_path, base_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)
with open(base_path) as f:
    base = json.load(f)
tol = float(os.environ.get("BENCH_GATE_PCT", "30")) / 100.0

def key(r):
    return (r["replicas"], r["clients"], r.get("read_pct", 0))

baseline = {key(r): r for r in base["rows"]}
bad, matched = [], 0
for r in fresh["rows"]:
    k = key(r)
    if k not in baseline:
        continue
    matched += 1
    floor = baseline[k]["tps"] * (1.0 - tol)
    if r["tps"] < floor:
        bad.append(
            "  replicas=%d clients=%d read_pct=%d: %.1f tps < floor %.1f "
            "(baseline %.1f)" % (*k, r["tps"], floor, baseline[k]["tps"])
        )
if matched == 0:
    sys.exit("bench gate: no rows matched between %s and %s" % (fresh_path, base_path))
if bad:
    print("bench gate: committed-tps regression beyond %d%% tolerance:" % int(tol * 100))
    print("\n".join(bad))
    sys.exit(1)
print("bench gate ok: %d rows within %d%% of baseline" % (matched, int(tol * 100)))
PY
