#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, static analysis, and the test suite.
# Offline-friendly: everything runs with --offline against the committed
# Cargo.lock, so it works in network-less containers.
#
# Usage: scripts/check.sh [--quick|--tcp|--tsan|--miri]
#   --quick   skip the slower integration suites (unit tests only)
#   --tcp     TCP transport tier: transport conformance suite on both
#             backends, remote-driver protocol tests, and the 3-process
#             multinode smoke (kill -9 + restart, zero audit violations)
#   --tsan    ThreadSanitizer tier over the concurrency-heavy crates
#             (nightly + rust-src; skipped with a message if unavailable)
#   --miri    Miri tier over sirep-common / sirep-storage
#             (nightly + miri component; skipped with a message if unavailable)

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"

# ------------------------------------------------------------- sanitizers
# These tiers need nightly extras that the offline container cannot
# install (`rustup component add` requires the network), so they detect
# what is present and skip with an explanation instead of failing. CI
# installs the components and runs both tiers on every push to main.
# Exact invocations and rationale: DESIGN.md §13.5.

if [[ "$MODE" == "--tcp" ]]; then
    echo "==> transport conformance suite (SimGroup + TcpGroup backends)"
    cargo test --offline -p sirep-gcs --lib conformance -q
    echo "==> remote driver protocol tests (framed client/server, failover)"
    cargo test --offline -p sirep-driver --lib remote -q
    echo "==> telemetry plane tests (frame round-trips, corrupt frames, scrape resilience)"
    cargo test --offline -p sirep-driver --lib telemetry -q
    echo "==> multinode smoke: kill -9 + restart, telemetry report parses, scraped audit clean"
    scripts/multinode.sh 3
    echo "OK: TCP tier green."
    exit 0
fi

if [[ "$MODE" == "--tsan" ]]; then
    echo "==> ThreadSanitizer tier (sirep-common, sirep-storage, sirep-gcs)"
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "SKIP: no nightly toolchain installed (rustup toolchain install nightly)."
        exit 0
    fi
    SYSROOT="$(rustc +nightly --print sysroot)"
    if [[ ! -f "$SYSROOT/lib/rustlib/src/rust/library/Cargo.lock" ]]; then
        # Without -Zbuild-std the precompiled std is uninstrumented: TSan
        # cannot see the futex-based std Mutex's happens-before edges and
        # reports a false race on every lock-protected field (we verified
        # this: it flags Semaphore::release vs ::acquire, both of which
        # hold the same mutex). Instrumenting std needs rust-src.
        rustup component add rust-src --toolchain nightly 2>/dev/null || {
            echo "SKIP: rust-src not installed and not installable offline."
            echo "      CI runs this tier; locally: rustup component add rust-src --toolchain nightly"
            exit 0
        }
    fi
    RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
        cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
        -p sirep-common -p sirep-storage -p sirep-gcs --lib
    echo "OK: ThreadSanitizer tier green."
    exit 0
fi

if [[ "$MODE" == "--miri" ]]; then
    echo "==> Miri tier (sirep-common, sirep-storage)"
    if ! cargo +nightly miri --version >/dev/null 2>&1; then
        echo "SKIP: miri not installed and not installable offline."
        echo "      CI runs this tier; locally: rustup component add miri --toolchain nightly"
        exit 0
    fi
    # -Zmiri-disable-isolation: the clock module reads real time. The
    # precise_sleep statistical tests assert scheduler accuracy that the
    # interpreter cannot provide, so they are skipped by name.
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p sirep-common -p sirep-storage --lib \
        -- --skip clock::tests::precise_sleep
    echo "OK: Miri tier green."
    exit 0
fi

QUICK=0
[[ "$MODE" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> sirep-lint (workspace invariant checker; see lint.toml)"
# Build first so the wall-clock budget below measures analysis, not
# compilation. --deny-stale: a suppression matching nothing is an error
# here and in CI, so dead justifications cannot accumulate. The JSON
# report is what CI uploads as an artifact when the gate fails.
cargo build --offline -q -p sirep-lint
LINT_START=$SECONDS
cargo run --offline -q -p sirep-lint -- --root . --json results/LINT.json --deny-stale
LINT_ELAPSED=$(( SECONDS - LINT_START ))
echo "    sirep-lint wall clock: ${LINT_ELAPSED}s"
if (( LINT_ELAPSED > 20 )); then
    echo "FAIL: sirep-lint took ${LINT_ELAPSED}s (budget: 20s). The analysis runs on every"
    echo "      commit; if it cannot stay inside the budget, fix the regression (the CFG"
    echo "      pass is expected to be linear in tokens per function)."
    exit 1
fi

echo "==> cargo build (trace feature disabled — the no-op observability path)"
cargo build --offline -p si-rep --no-default-features

if [[ "$QUICK" == "1" ]]; then
    echo "==> cargo test (unit tests only)"
    cargo test --offline --workspace --lib -q
    echo "==> sirep-lint rule fixtures"
    cargo test --offline -p sirep-lint --test fixtures_test -q
    echo "==> certification differential property tests (indexed vs scan oracle; batched vs single-frame delivery)"
    cargo test --offline -p sirep-core --lib validation::differential -q
    echo "==> sirep-model (exhaustive protocol exploration, quick scopes)"
    cargo run --offline -q --release -p sirep-model -- --quick --emit results
    echo "==> chaos harness (2 pinned seeds)"
    SIREP_CHAOS_SEEDS=2 cargo test --offline --test chaos_faults -q
else
    echo "==> cargo test (workspace)"
    cargo test --offline --workspace -q
    echo "==> sirep-model (exhaustive protocol exploration, all scopes + mutant self-check)"
    cargo run --offline -q --release -p sirep-model -- --full --self-check --emit results
    echo "==> chaos harness (16-seed sweep)"
    SIREP_CHAOS_SEEDS=16 cargo test --offline --test chaos_faults -q
fi

echo "OK: fmt, clippy, sirep-lint, trace-off build, tests all green."
