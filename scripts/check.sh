#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Offline-friendly: everything runs with --offline against the committed
# Cargo.lock, so it works in network-less containers.
#
# Usage: scripts/check.sh [--quick]
#   --quick   skip the slower integration suites (unit tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build (trace feature disabled — the no-op observability path)"
cargo build --offline -p si-rep --no-default-features

if [[ "$QUICK" == "1" ]]; then
    echo "==> cargo test (unit tests only)"
    cargo test --offline --workspace --lib -q
    echo "==> certification differential property test (indexed vs scan oracle)"
    cargo test --offline -p sirep-core --lib validation::differential -q
    echo "==> chaos harness (2 pinned seeds)"
    SIREP_CHAOS_SEEDS=2 cargo test --offline --test chaos_faults -q
else
    echo "==> cargo test (workspace)"
    cargo test --offline --workspace -q
    echo "==> chaos harness (16-seed sweep)"
    SIREP_CHAOS_SEEDS=16 cargo test --offline --test chaos_faults -q
fi

echo "OK: fmt, clippy, trace-off build, tests all green."
