#!/usr/bin/env bash
# Launch a real multi-process SI-Rep cluster (sequencer + N middleware
# nodes), drive a money-transfer workload through the remote driver,
# kill -9 one node mid-deployment, restart it, and prove the cluster
# converged: identical table contents on every node, balances conserved,
# zero 1-copy-SI audit violations. Then scrape every node's telemetry
# port: merged cluster report + clock-aligned Perfetto trace must come
# out parseable, the scraped-journal audit must be clean, and a short
# client sweep writes the e2e bench baseline.
#
# Usage: scripts/multinode.sh [N]        (default: 3 nodes)
# Env:   OPS, ACCOUNTS, SEED, PROFILE (debug|release)
#        BENCH_OUT (default: bench JSON stays in the temp workdir;
#        set BENCH_OUT=results/BENCH_e2e.json to refresh the baseline)
#        BENCH_CLIENTS, BENCH_SECS, BENCH_READ_MIX, BENCH_WARMUP_MS
# On failure the workdir (logs, report, trace, bench JSON) is copied to
# artifacts/multinode/ for CI upload.
set -euo pipefail

NODES=${1:-3}
OPS=${OPS:-150}
ACCOUNTS=${ACCOUNTS:-32}
SEED=${SEED:-1}
PROFILE=${PROFILE:-debug}

cd "$(dirname "$0")/.."
if [ "$PROFILE" = release ]; then
    cargo build --offline --release -p sirep-cluster
    BIN=target/release/sirep-cluster
else
    cargo build --offline -p sirep-cluster
    BIN=target/debug/sirep-cluster
fi

WORKDIR=$(mktemp -d)
pids=()
cleanup() {
    local status=$?
    kill "${pids[@]}" >/dev/null 2>&1 || true
    wait >/dev/null 2>&1 || true
    if [ "$status" -ne 0 ]; then
        # Keep everything a post-mortem needs: process logs, the scraped
        # report/trace, and the bench JSON. CI uploads this directory.
        mkdir -p artifacts/multinode
        cp -r "$WORKDIR"/. artifacts/multinode/ 2>/dev/null || true
        echo "multinode failed (exit $status); workdir copied to artifacts/multinode/" >&2
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# start_bg <logfile> <args...> — launch $BIN in the background, wait for its
# "READY <addr>" line, echo the addr. Runs inside $(...) command
# substitution, i.e. a subshell — the pid is handed back via "$log.pid".
start_bg() {
    local log=$1
    shift
    "$BIN" "$@" >"$log" 2>&1 &
    echo $! >"$log.pid"
    local addr
    for _ in $(seq 1 200); do
        addr=$(awk '/^READY /{print $2; exit}' "$log" 2>/dev/null || true)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.05
    done
    echo "error: $* never became ready; log follows" >&2
    cat "$log" >&2
    return 1
}

SCHEMA='CREATE TABLE accounts (id INT, balance INT, PRIMARY KEY (id))'

SEQ_ADDR=$(start_bg "$WORKDIR/seq.log" seq --bind 127.0.0.1:0)
pids+=("$(cat "$WORKDIR/seq.log.pid")")
echo "sequencer at $SEQ_ADDR"

declare -a NODE_ADDR NODE_PID NODE_TEL
# The TELEMETRY line is printed before READY, so once start_bg returns it
# is guaranteed to be in the log already.
telemetry_addr() { awk '/^TELEMETRY /{print $2; exit}' "$1"; }
for k in $(seq 0 $((NODES - 1))); do
    NODE_ADDR[k]=$(start_bg "$WORKDIR/node$k.log" \
        node --seq "$SEQ_ADDR" --replica "$k" --bind 127.0.0.1:0 --schema "$SCHEMA")
    NODE_PID[k]=$(cat "$WORKDIR/node$k.log.pid")
    NODE_TEL[k]=$(telemetry_addr "$WORKDIR/node$k.log")
    pids+=("${NODE_PID[k]}")
    echo "node $k at ${NODE_ADDR[k]} (telemetry ${NODE_TEL[k]}, pid ${NODE_PID[k]})"
done
join_addrs() { local IFS=,; echo "${NODE_ADDR[*]}"; }
join_tel() { local IFS=,; echo "${NODE_TEL[*]}"; }

echo "== phase 1: seed + workload on the healthy cluster =="
"$BIN" workload --nodes "$(join_addrs)" --init \
    --ops "$OPS" --accounts "$ACCOUNTS" --seed "$SEED"
"$BIN" check --nodes "$(join_addrs)" --accounts "$ACCOUNTS"

# Kill the node clients connect to first, while a workload is running:
# the remote driver must fail over mid-stream (§5.4 cases 1–3 over real
# sockets), and the workload must still finish cleanly.
VICTIM=0
echo "== phase 2: kill -9 node $VICTIM (pid ${NODE_PID[VICTIM]}) mid-workload =="
"$BIN" workload --nodes "$(join_addrs)" \
    --ops "$OPS" --accounts "$ACCOUNTS" --seed $((SEED + 1)) &
WL_PID=$!
sleep 1
kill -9 "${NODE_PID[VICTIM]}"
wait "$WL_PID"

echo "== phase 3: restart node $VICTIM, recover by replay, full check =="
NODE_ADDR[VICTIM]=$(start_bg "$WORKDIR/node$VICTIM-restarted.log" \
    node --seq "$SEQ_ADDR" --replica "$VICTIM" --bind 127.0.0.1:0 --schema "$SCHEMA")
NODE_PID[VICTIM]=$(cat "$WORKDIR/node$VICTIM-restarted.log.pid")
NODE_TEL[VICTIM]=$(telemetry_addr "$WORKDIR/node$VICTIM-restarted.log")
pids+=("${NODE_PID[VICTIM]}")
echo "node $VICTIM back at ${NODE_ADDR[VICTIM]} (telemetry ${NODE_TEL[VICTIM]})"

"$BIN" workload --nodes "$(join_addrs)" \
    --ops "$OPS" --accounts "$ACCOUNTS" --seed $((SEED + 2))
"$BIN" check --nodes "$(join_addrs)" --accounts "$ACCOUNTS"

echo "== phase 4: scrape telemetry -> merged report, aligned trace, journal audit =="
"$BIN" report --telemetry "$(join_tel)" --seq "$SEQ_ADDR" --out "$WORKDIR/report"
for f in report.json report.prom trace.json; do
    if [ ! -s "$WORKDIR/report/$f" ]; then
        echo "error: $WORKDIR/report/$f missing or empty" >&2
        exit 1
    fi
done
# The merged Prometheus text must carry both protocol and wire counters.
grep -q '^sirep_commits_update_total ' "$WORKDIR/report/report.prom"
grep -q '^sirep_transport_frames_in_total ' "$WORKDIR/report/report.prom"
"$BIN" audit --telemetry "$(join_tel)"

echo "== phase 5: e2e bench baseline (committed transfers/sec) =="
BENCH_OUT=${BENCH_OUT:-$WORKDIR/BENCH_e2e.json}
"$BIN" workload --nodes "$(join_addrs)" --ops 1 --accounts "$ACCOUNTS" \
    --seed $((SEED + 3)) --bench-json "$BENCH_OUT" \
    --clients "${BENCH_CLIENTS:-1,2,4}" --bench-secs "${BENCH_SECS:-2}" \
    --read-mix "${BENCH_READ_MIX:-0,50}" --bench-warmup-ms "${BENCH_WARMUP_MS:-500}"
if [ ! -s "$BENCH_OUT" ]; then
    echo "error: bench output $BENCH_OUT missing or empty" >&2
    exit 1
fi
"$BIN" check --nodes "$(join_addrs)" --accounts "$ACCOUNTS"

echo "multinode smoke passed: $NODES nodes, kill+restart of node $VICTIM survived," \
    "telemetry report+audit clean, bench at $BENCH_OUT"
