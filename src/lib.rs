//! # si-rep
//!
//! Umbrella crate for the SI-Rep reproduction — middleware-based data
//! replication providing 1-copy snapshot isolation (Lin, Kemme,
//! Patiño-Martínez, Jiménez-Peris; SIGMOD 2005).
//!
//! Re-exports the workspace crates under stable module names so examples,
//! integration tests and downstream users have a single dependency:
//!
//! - [`storage`] — MVCC snapshot-isolation engine (PostgreSQL-style
//!   first-updater-wins write conflicts, writeset extraction/application);
//! - [`sql`] — the SQL subset clients speak;
//! - [`gcs`] — uniform reliable total-order multicast + membership;
//! - [`core`] — the replication protocols: SRCA, SRCA-Rep, SRCA-Opt, the
//!   table-level-locking baseline, and the 1-copy-SI formal model;
//! - [`driver`] — the JDBC-analogue client driver with transparent
//!   failover;
//! - [`workloads`] — TPC-W ordering mix, large-DB and update-intensive
//!   workloads plus the closed-loop load generator;
//! - [`common`] — ids, clocks, statistics.

pub use sirep_common as common;
pub use sirep_core as core;
pub use sirep_driver as driver;
pub use sirep_gcs as gcs;
pub use sirep_sql as sql;
pub use sirep_storage as storage;
pub use sirep_workloads as workloads;
