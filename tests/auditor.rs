//! Online 1-copy-SI auditor tests: clean protocol runs must report zero
//! violations in every mode, and deliberately injected violations of each
//! audited invariant must be caught.
//!
//! The injection tests drive the [`Auditor`] hooks directly with crafted
//! event sequences — the live protocol (correctly) never produces them, so
//! this is the only way to prove the auditor would fire. The clean-run half
//! runs real clusters, which exercises the same hooks from the real call
//! sites in `node.rs`.

use si_rep::core::{Cluster, ClusterConfig, Connection, ReplicationMode};
use std::time::Duration;

const Q: Duration = Duration::from_secs(20);

fn run_small_workload(mode: ReplicationMode) -> Cluster {
    let c = Cluster::new(ClusterConfig::builder().replicas(3).mode(mode).build());
    c.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
    let mut s = c.session(0);
    for id in 0..8 {
        s.execute(&format!("INSERT INTO acc VALUES ({id}, 100)")).unwrap();
    }
    s.commit().unwrap();
    // Concurrent writers from two replicas, with real conflicts.
    let mut a = c.session(1);
    let mut b = c.session(2);
    for i in 0..10 {
        a.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {}", i % 8)).unwrap();
        let _ = a.commit(); // validation aborts are fine — the auditor watches
        b.execute(&format!("UPDATE acc SET bal = bal - 1 WHERE id = {}", (i + 3) % 8)).unwrap();
        let _ = b.commit(); // the verdicts, not the outcome
    }
    assert!(c.quiesce(Q), "cluster failed to drain");
    c
}

/// Clean runs of both decentralized protocols keep the auditor clean.
#[test]
fn clean_runs_report_no_violations() {
    for mode in [ReplicationMode::SrcaRep, ReplicationMode::SrcaOpt] {
        let c = run_small_workload(mode);
        let report = c.metrics();
        assert!(
            report.violations.is_empty(),
            "{mode:?} tripped the auditor: {:?}",
            report.violations
        );
        assert!(c.audit_is_clean());
    }
}

/// `audit(false)` turns the auditor off entirely: no bookkeeping, no
/// violations — even for workloads that would be checked when on.
#[test]
fn disabled_auditor_reports_nothing() {
    let c = Cluster::new(
        ClusterConfig::builder().replicas(2).mode(ReplicationMode::SrcaRep).audit(false).build(),
    );
    c.execute_ddl("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))").unwrap();
    let mut s = c.session(0);
    s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    assert!(c.audit_is_clean());
    assert!(c.metrics().violations.is_empty());
}

/// Injected-violation tests: these construct an [`Auditor`] and replay the
/// exact hook sequences the replicas would emit, with one invariant broken.
#[cfg(feature = "trace")]
mod injection {
    use si_rep::common::{GlobalTid, ReplicaId};
    use si_rep::core::{AuditKind, Auditor, XactId};
    use si_rep::storage::{Key, Value, WriteSet, WsOp};
    use std::sync::Arc;

    const R0: ReplicaId = ReplicaId::new(0);
    const R1: ReplicaId = ReplicaId::new(1);

    fn xact(origin: ReplicaId, seq: u64) -> XactId {
        XactId { origin, seq }
    }

    fn ws_on(key: i64) -> Arc<WriteSet> {
        let mut w = WriteSet::new();
        w.push("acc".into(), Key(vec![Value::Int(key)]), WsOp::Delete);
        Arc::new(w)
    }

    /// Theorem 1: every replica must reach the same verdict for the same
    /// delivered writeset. A replica disagreeing on pass/fail is a
    /// commit-order divergence.
    #[test]
    fn divergent_verdicts_are_caught() {
        let a = Auditor::new(true, true);
        let x = xact(R0, 1);
        let ws = ws_on(1);
        a.on_deliver(R0, x, GlobalTid::ZERO);
        a.on_verdict(R0, x, GlobalTid::ZERO, Some(GlobalTid::new(1)), &ws);
        a.on_deliver(R1, x, GlobalTid::ZERO);
        // Replica 1 (wrongly) fails the same writeset.
        a.on_verdict(R1, x, GlobalTid::ZERO, None, &ws);
        let v = a.violations();
        assert!(
            v.iter().any(|v| v.kind == AuditKind::CommitOrderDivergence),
            "expected a divergence violation, got {v:?}"
        );
        assert!(!a.is_clean());
    }

    /// First-committer-wins: two concurrent transactions with intersecting
    /// writesets cannot both pass certification.
    #[test]
    fn conflicting_concurrent_passes_are_caught() {
        let a = Auditor::new(true, true);
        let ws = ws_on(7);
        // Both certified against the empty history (cert = 0): concurrent.
        a.on_verdict(R0, xact(R0, 1), GlobalTid::ZERO, Some(GlobalTid::new(1)), &ws);
        a.on_verdict(R0, xact(R1, 1), GlobalTid::ZERO, Some(GlobalTid::new(2)), &ws);
        let v = a.violations();
        assert!(
            v.iter().any(|v| v.kind == AuditKind::FirstCommitterWins),
            "expected a first-committer-wins violation, got {v:?}"
        );
    }

    /// Adjustment 3: a local transaction may not begin while a hole is open
    /// (a validated-but-uncommitted tid below the commit frontier).
    #[test]
    fn begin_during_hole_is_caught() {
        let a = Auditor::new(true, true);
        let (x1, x2) = (xact(R0, 1), xact(R0, 2));
        a.on_verdict(R0, x1, GlobalTid::ZERO, Some(GlobalTid::new(1)), &ws_on(1));
        a.on_verdict(R0, x2, GlobalTid::ZERO, Some(GlobalTid::new(2)), &ws_on(2));
        // tid 2 commits while tid 1 is still pending → tid 1 is a hole.
        a.on_commit(R0, x2, GlobalTid::new(2));
        a.on_local_begin(R0);
        let v = a.violations();
        assert!(
            v.iter().any(|v| v.kind == AuditKind::HoleSyncViolation),
            "expected a hole-sync violation, got {v:?}"
        );
    }

    /// The distributed ws_list garbage collection may never regress its
    /// watermark, and no delivered writeset may carry a cert below it.
    #[test]
    fn watermark_regression_is_caught() {
        let a = Auditor::new(true, true);
        a.on_prune(R0, GlobalTid::new(10));
        a.on_prune(R0, GlobalTid::new(4));
        let v = a.violations();
        assert!(
            v.iter().any(|v| v.kind == AuditKind::PruneWatermarkViolation),
            "expected a watermark violation, got {v:?}"
        );
    }
}

/// With tracing compiled out the auditor is a no-op: the same API exists
/// and every query reports "clean".
#[cfg(not(feature = "trace"))]
#[test]
fn stub_auditor_has_same_api_and_stays_clean() {
    use si_rep::core::Auditor;
    let a = Auditor::new(true, true);
    assert!(a.is_clean());
    assert!(a.violations().is_empty());
    assert!(!a.is_enabled());
}
