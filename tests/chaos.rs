//! Chaos test: continuous transfer load through the failover driver while
//! replicas repeatedly crash and recover. Invariants at the end:
//!
//! 1. every acknowledged commit is durable (total balance = initial +
//!    acknowledged increments);
//! 2. all live replicas converge to identical state;
//! 3. every error surfaced to a client is a documented retryable kind.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use si_rep::core::{Cluster, ClusterConfig, Connection};
use si_rep::driver::{Driver, DriverConfig};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn crash_recover_cycles_under_load() {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(3).build()));
    c.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
    {
        let mut s = c.session(0);
        for id in 0..10 {
            s.execute(&format!("INSERT INTO acc VALUES ({id}, 0)")).unwrap();
        }
        s.commit().unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(10)));

    let driver = Arc::new(Driver::new(Arc::clone(&c), DriverConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicI64::new(0));

    std::thread::scope(|scope| {
        // 4 clients hammering increments through the failover driver.
        for t in 0..4u64 {
            let driver = Arc::clone(&driver);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                'outer: while !stop.load(Ordering::Relaxed) {
                    let Ok(mut conn) = driver.connect() else {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    };
                    for _ in 0..20 {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        let id = rng.gen_range(0..10);
                        let r = (|| {
                            conn.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}"))?;
                            conn.commit()
                        })();
                        match r {
                            Ok(()) => {
                                acked.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(e) => {
                                conn.rollback();
                                assert!(
                                    matches!(
                                        e,
                                        si_rep::common::DbError::Aborted(_)
                                            | si_rep::common::DbError::ConnectionLost { .. }
                                    ),
                                    "unexpected client error: {e:?}"
                                );
                            }
                        }
                    }
                }
            });
        }
        // The chaos monkey: crash and recover replicas in a rolling pattern,
        // never taking more than one down at a time.
        let monkey = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for round in 0..3usize {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let victim = round % 3;
                    c.crash(victim);
                    std::thread::sleep(Duration::from_millis(120));
                    c.recover(victim).expect("recovery failed");
                    std::thread::sleep(Duration::from_millis(120));
                }
            })
        };
        monkey.join().unwrap();
        stop.store(true, Ordering::Relaxed);
    });

    assert!(c.quiesce(Duration::from_secs(20)), "cluster failed to quiesce after chaos");
    let n = acked.load(Ordering::SeqCst);
    assert!(n > 0, "no transactions survived the chaos run");
    assert_eq!(c.alive().len(), 3, "all replicas should be back");
    let mut sums = Vec::new();
    for k in 0..3 {
        let mut s = c.session(k);
        let r = s.execute("SELECT SUM(bal) FROM acc").unwrap();
        sums.push(r.rows()[0][0].as_int().unwrap());
        s.commit().unwrap();
    }
    let report = c.metrics();
    assert!(report.violations.is_empty(), "auditor tripped: {:?}", report.violations);
    assert_eq!(sums[0], sums[1], "replicas 0/1 diverged: {sums:?}");
    assert_eq!(sums[1], sums[2], "replicas 1/2 diverged: {sums:?}");
    assert_eq!(sums[0], n, "acked increments lost or duplicated: acked={n} sum={}", sums[0]);
}
