//! The chaos harness: seeded fault injection (drop/duplicate/delay,
//! partitions) plus named crash-points, driven hard while the online
//! 1-copy-SI auditor watches. Invariants:
//!
//! 1. the fault schedule is a pure function of the seed — same seed, same
//!    script ⇒ byte-identical schedule (fingerprint equality);
//! 2. no acknowledged write is ever lost, no matter which faults fire;
//! 3. the auditor stays clean through every seed.
//!
//! The sweep width is `SIREP_CHAOS_SEEDS` (default 2 for the quick tier;
//! CI's full tier sets 16). Each seed's fingerprint is written to
//! `results/CHAOS_<seed>.json` so a failing seed can be replayed exactly.

use si_rep::common::{CrashPoint, DbError};
use si_rep::core::{Cluster, ClusterConfig, Connection};
use si_rep::driver::{Driver, DriverConfig};
use si_rep::gcs::{Delivery, FaultConfig, FaultRecord, GroupConfig, SimGroup, SimMember};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const Q: Duration = Duration::from_secs(20);

// --- determinism: same seed ⇒ identical fault schedule -------------------

/// One scripted, single-threaded run: 4 members, 300 round-robin
/// multicasts under the full chaos mix, an explicit heal, then a full
/// drain. Returns the fault fingerprint, the retained schedule, and the
/// per-member delivery streams.
type ScriptedRun = ((u64, u64), Vec<FaultRecord>, Vec<Vec<(u64, u64)>>);

fn scripted_run(seed: u64) -> ScriptedRun {
    let group: SimGroup<u64> = SimGroup::new(GroupConfig::instant());
    let members: Vec<SimMember<u64>> = (0..4).map(|_| group.join()).collect();
    for m in &members {
        while let Some(d) = m.try_recv() {
            assert!(matches!(d, Delivery::ViewChange(_)), "unexpected early delivery");
        }
    }
    group.install_faults(FaultConfig::chaos(seed));
    for i in 0..300u64 {
        // A planned partition may be isolating this sender; its multicast
        // is then held and re-sequenced at heal — still never lost.
        members[(i % 4) as usize].multicast_total(i).unwrap();
    }
    group.heal(); // flush whatever partition is still active
    let streams: Vec<Vec<(u64, u64)>> = members
        .iter()
        .map(|m| {
            let mut out = Vec::with_capacity(300);
            while out.len() < 300 {
                match m.recv_timeout(Duration::from_secs(10)).expect("delivery lost") {
                    Delivery::TotalOrder { seq, msg, .. } => out.push((seq, msg)),
                    // Batching coalesces already-sequenced frames; the
                    // per-entry (seq, payload) stream must be unchanged.
                    Delivery::TotalBatch { entries, .. } => {
                        out.extend(entries.into_iter().map(|e| (e.seq, e.msg)));
                    }
                    Delivery::Fifo { .. } | Delivery::ViewChange(_) => {}
                }
            }
            out
        })
        .collect();
    (group.fault_fingerprint().expect("plan installed"), group.fault_log(), streams)
}

#[test]
fn same_seed_reproduces_identical_fault_schedule() {
    let (fp1, log1, streams1) = scripted_run(0xFA57);
    let (fp2, log2, streams2) = scripted_run(0xFA57);
    assert_eq!(fp1, fp2, "same seed must fingerprint identically");
    assert_eq!(log1, log2, "same seed must produce the identical schedule");
    assert!(fp1.0 > 0, "the chaos mix must actually inject faults");
    // Total order held under chaos: every member saw the same stream, and
    // every payload arrived exactly once.
    for s in &streams1[1..] {
        assert_eq!(s, &streams1[0], "members disagree on total order under faults");
    }
    assert_eq!(streams1[0].len(), 300);
    let mut payloads: Vec<u64> = streams1[0].iter().map(|(_, m)| *m).collect();
    payloads.sort_unstable();
    assert_eq!(payloads, (0..300).collect::<Vec<_>>(), "payload lost or duplicated");
    // And the runs agree with each other end to end.
    assert_eq!(streams1, streams2);
    // A different seed yields a different schedule.
    let (fp3, _, _) = scripted_run(0xFA58);
    assert_ne!(fp1, fp3, "different seeds should not collide");
}

// --- crash-points ---------------------------------------------------------

fn cluster(n: usize) -> Arc<Cluster> {
    cluster_with(n, GroupConfig::instant())
}

fn cluster_with(n: usize, gcs: GroupConfig) -> Arc<Cluster> {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).gcs(gcs).build()));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    let mut s = c.session(0);
    for k in 0..10 {
        s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)")).unwrap();
    }
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    c
}

fn sum_at(c: &Cluster, k: usize) -> i64 {
    let mut s = c.session(k);
    let r = s.execute("SELECT SUM(v) FROM kv").unwrap();
    let v = r.rows()[0][0].as_int().unwrap();
    s.commit().unwrap();
    v
}

/// A remote replica dies after picking a writeset off its `tocommit`
/// queue but before committing it. The origin's commit is unaffected, the
/// survivors converge, and recovery restores the dropped apply via state
/// transfer.
#[test]
fn crash_point_mid_apply_recovers() {
    let c = cluster(3);
    c.arm_crash_point(CrashPoint::AfterDeliverBeforeCommit, 2);
    let mut s = c.session(0);
    s.execute("UPDATE kv SET v = v + 1 WHERE k = 0").unwrap();
    s.commit().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && !c.armed_crash_points().is_empty() {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(c.armed_crash_points().is_empty(), "the crash-point never fired");
    assert!(!c.node(2).is_alive());
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 0), 1);
    assert_eq!(sum_at(&c, 1), 1);
    c.recover(2).unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 2), 1, "the apply dropped at the crash-point must be restored");
    assert!(c.audit_is_clean(), "{:?}", c.audit_violations());
}

/// Crash a remote replica while its applier is draining a group-commit
/// batch. A burst of concurrent, non-conflicting commits queues several
/// ready writesets at replica 2 (`GroupConfig::instant()` batches delivery
/// and the applier drains every ready entry into one engine transaction);
/// the crash-point fires after the batch is picked up but before the
/// engine commit. Recovery must restore every batched apply exactly once —
/// no lost entry, no double-applied entry, auditor clean.
#[test]
fn crash_mid_batch_group_commit_recovers() {
    let c = cluster(3);
    c.arm_crash_point(CrashPoint::AfterDeliverBeforeCommit, 2);
    // Disjoint keys per thread, so certification passes all of them and
    // the burst is free to coalesce into ready batches.
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let c = &c;
            scope.spawn(move || {
                for i in 0..5usize {
                    let mut s = c.session(t % 2);
                    let k = t * 2 + (i % 2);
                    s.execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}")).unwrap();
                    s.commit().unwrap();
                }
            });
        }
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && !c.armed_crash_points().is_empty() {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(c.armed_crash_points().is_empty(), "the crash-point never fired");
    assert!(!c.node(2).is_alive());
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 0), 20);
    assert_eq!(sum_at(&c, 1), 20);
    c.recover(2).unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 2), 20, "a batched apply was lost or double-applied across the crash");
    assert!(c.audit_is_clean(), "{:?}", c.audit_violations());
}

// --- the seed sweep -------------------------------------------------------

fn sweep_seeds() -> u64 {
    std::env::var("SIREP_CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

/// One full chaos run: message-level faults from the seed, a monkey doing
/// explicit partition/heal cycles and firing the mid-commit crash-point,
/// four clients hammering increments through the failover driver.
///
/// Accounting is exact: the driver resolves every in-doubt commit to a
/// definitive outcome, so `Ok` ⇒ committed and `Err(Aborted)` ⇒ not
/// committed, and the final SUM must equal the acked count at every
/// replica.
fn sweep_one_seed(seed: u64) {
    sweep_one_seed_on(seed, GroupConfig::instant());
}

fn sweep_one_seed_on(seed: u64, gcs: GroupConfig) {
    let c = cluster_with(3, gcs);
    let mut fc = FaultConfig::chaos(seed);
    // Planned partitions only heal on multicast traffic; a fully blocked
    // client generates none, so the cluster harness uses explicit monkey
    // partitions for liveness and keeps the message-level faults seeded.
    fc.partition_prob = 0.0;
    c.install_faults(fc);

    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicI64::new(0));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                let driver = Driver::new(
                    Arc::clone(&c),
                    DriverConfig::builder()
                        .inquiry_attempts(8)
                        .backoff_base(Duration::from_millis(1))
                        .build(),
                );
                'outer: while !stop.load(Ordering::Relaxed) {
                    let Ok(mut conn) = driver.connect() else {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    };
                    for i in 0..20u64 {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        let k = (t * 20 + i) % 10;
                        let r = (|| {
                            conn.execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}"))?;
                            conn.commit()
                        })();
                        match r {
                            Ok(()) => {
                                acked.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(e) => {
                                conn.rollback();
                                // The monkey never takes the whole cluster
                                // down, so `Unavailable` here would mean
                                // the bounded in-doubt retry gave up too
                                // early — a harness invariant violation.
                                assert!(
                                    matches!(
                                        e,
                                        DbError::Aborted(_) | DbError::ConnectionLost { .. }
                                    ),
                                    "seed {seed}: unexpected client error: {e:?}"
                                );
                            }
                        }
                    }
                }
            });
        }
        // The monkey alternates partition/heal cycles on replica 2 with
        // crash-point kills (and recoveries) of replica 0 — never both at
        // once, so at least one unimpaired replica always exists.
        let monkey = {
            let c = Arc::clone(&c);
            scope.spawn(move || {
                for _round in 0..3usize {
                    c.partition(&[2]);
                    std::thread::sleep(Duration::from_millis(40));
                    c.heal_partition();
                    std::thread::sleep(Duration::from_millis(20));
                    c.arm_crash_point(CrashPoint::AfterMulticastBeforeLocalCommit, 0);
                    let deadline = Instant::now() + Duration::from_millis(800);
                    while Instant::now() < deadline && !c.armed_crash_points().is_empty() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // If no client happened to commit through replica 0 in
                    // time, withdraw the trap (it must not fire into the
                    // final accounting phase).
                    c.disarm_crash_point(CrashPoint::AfterMulticastBeforeLocalCommit);
                    if !c.node(0).is_alive() {
                        std::thread::sleep(Duration::from_millis(30));
                        c.recover(0).expect("recovery failed");
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };
        monkey.join().unwrap();
        stop.store(true, Ordering::Relaxed);
    });

    assert!(c.quiesce(Q), "seed {seed}: cluster failed to quiesce");
    assert_eq!(c.alive().len(), 3, "seed {seed}: a replica stayed down");
    let n = acked.load(Ordering::SeqCst);
    assert!(n > 0, "seed {seed}: no transactions survived");
    let report = c.metrics();
    assert!(report.violations.is_empty(), "seed {seed}: auditor tripped: {:?}", report.violations);
    for k in 0..3 {
        assert_eq!(sum_at(&c, k), n, "seed {seed}: replica {k} lost or duplicated acked writes");
    }
    let (count, hash) = c.fault_fingerprint().expect("plan installed");
    assert!(count > 0, "seed {seed}: the chaos mix injected nothing");
    assert!(report.gauges.faults_injected.current > 0, "fault gauge not wired");
    // Replay breadcrumb for a failing seed.
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(
        format!("results/CHAOS_{seed}.json"),
        format!(
            "{{\"seed\":{seed},\"fault_count\":{count},\"fingerprint\":\"{hash:016x}\",\"acked\":{n}}}\n"
        ),
    );
}

#[test]
fn seed_sweep_holds_one_copy_si_and_loses_no_acked_write() {
    for i in 0..sweep_seeds() {
        sweep_one_seed(0xC0FFEE + i * 7919);
    }
}

/// Control run with delivery batching disabled: the same invariants must
/// hold on the single-frame stream, pinning any future sweep failure to
/// (or away from) the batching layer.
#[test]
fn seed_sweep_unbatched_control() {
    sweep_one_seed_on(0x0BA7_C0FF, GroupConfig::instant().unbatched());
}
