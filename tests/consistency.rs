//! Cross-crate consistency tests: heavy concurrent load through the public
//! API, then replica-convergence and invariant checks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use si_rep::core::{Cluster, ClusterConfig, Connection, ReplicationMode, System};
use si_rep::driver::{Driver, DriverConfig};
use std::sync::Arc;
use std::time::Duration;

const Q: Duration = Duration::from_secs(20);

fn money_cluster(n: usize, mode: ReplicationMode) -> Arc<Cluster> {
    let cfg = ClusterConfig::builder().replicas(n).mode(mode).build();
    let c = Arc::new(Cluster::new(cfg));
    c.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
    let mut s = c.session(0);
    for id in 0..20 {
        s.execute(&format!("INSERT INTO acc VALUES ({id}, 1000)")).unwrap();
    }
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    c
}

fn total_balance(c: &Cluster, k: usize) -> i64 {
    let mut s = c.session(k);
    let r = s.execute("SELECT SUM(bal) FROM acc").unwrap();
    let v = r.rows()[0][0].as_int().unwrap();
    s.commit().unwrap();
    v
}

/// Random transfers between accounts conserve the total balance, at every
/// replica, under both protocol variants (SRCA-Opt is still SI per replica
/// and certification still prevents lost updates — what it loses is the
/// global reads-from consistency, not money).
fn transfers_conserve_money(mode: ReplicationMode) {
    let c = money_cluster(3, mode);
    let mut handles = Vec::new();
    for node in 0..3 {
        let c2 = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(node as u64 + 99);
            let mut s = c2.session(node);
            let mut committed = 0;
            while committed < 30 {
                let from = rng.gen_range(0..20);
                let to = (from + rng.gen_range(1..20)) % 20;
                let amt = rng.gen_range(1..50);
                let r = (|| {
                    s.execute(&format!("UPDATE acc SET bal = bal - {amt} WHERE id = {from}"))?;
                    s.execute(&format!("UPDATE acc SET bal = bal + {amt} WHERE id = {to}"))?;
                    s.commit()
                })();
                match r {
                    Ok(()) => committed += 1,
                    Err(_) => s.rollback(),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(total_balance(&c, k), 20_000, "money vanished at replica {k}");
    }
    let report = c.metrics();
    assert!(report.violations.is_empty(), "auditor tripped: {:?}", report.violations);
}

#[test]
fn srca_rep_transfers_conserve_money() {
    transfers_conserve_money(ReplicationMode::SrcaRep);
}

#[test]
fn srca_opt_transfers_conserve_money() {
    transfers_conserve_money(ReplicationMode::SrcaOpt);
}

#[test]
fn driver_load_with_failover_preserves_acked_commits() {
    // Clients hammer the cluster through the failover driver while a
    // replica crashes. Every commit that was acknowledged must be present
    // at the survivors; every error must be one of the documented retryable
    // kinds.
    let c = money_cluster(3, ReplicationMode::SrcaRep);
    let driver = Arc::new(Driver::new(Arc::clone(&c), DriverConfig::default()));
    let acked = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let driver = Arc::clone(&driver);
        let acked = Arc::clone(&acked);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(t);
            let mut conn = driver.connect().unwrap();
            for _ in 0..60 {
                let id = rng.gen_range(0..20);
                let r = (|| {
                    conn.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}"))?;
                    conn.commit()
                })();
                match r {
                    Ok(()) => {
                        acked.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                    Err(e) => {
                        conn.rollback();
                        assert!(
                            matches!(e, si_rep::common::DbError::Aborted(_)),
                            "unexpected error kind: {e:?}"
                        );
                    }
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(60));
    c.crash(1);
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    let n = acked.load(std::sync::atomic::Ordering::SeqCst);
    // Acked increments are all present at both survivors.
    assert_eq!(total_balance(&c, 0), 20_000 + n);
    assert_eq!(total_balance(&c, 2), 20_000 + n);
    let report = c.metrics();
    assert!(report.violations.is_empty(), "auditor tripped: {:?}", report.violations);
}

#[test]
fn replicas_validate_identically_under_contention() {
    let c = money_cluster(2, ReplicationMode::SrcaRep);
    let mut handles = Vec::new();
    for node in 0..2 {
        let c2 = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut s = c2.session(node);
            let mut rng = SmallRng::seed_from_u64(node as u64);
            for _ in 0..80 {
                let id = rng.gen_range(0..3); // heavy contention on 3 rows
                let _ = s
                    .execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}"))
                    .and_then(|_| s.commit());
                if s.in_transaction() {
                    s.rollback();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    // Identical validation decisions → identical last tids and state.
    assert_eq!(c.node(0).last_validated(), c.node(1).last_validated());
    assert_eq!(total_balance(&c, 0), total_balance(&c, 1));
    let m = c.metrics();
    assert!(m.forced_aborts() > 0, "contention should force some aborts");
    assert!(m.violations.is_empty(), "auditor tripped: {:?}", m.violations);
}

#[test]
fn system_trait_object_round_robin() {
    let c = money_cluster(3, ReplicationMode::SrcaRep);
    let sys: &dyn System = c.as_ref();
    let mut conns: Vec<Box<dyn Connection>> = (0..3).map(|_| sys.connect().unwrap()).collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        conn.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {i}")).unwrap();
        conn.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    assert_eq!(total_balance(&c, 0), 20_003);
}
