//! End-to-end failover tests for the §5.4 connection states, through the
//! public driver API.

use si_rep::common::{AbortReason, DbError};
use si_rep::core::{Cluster, ClusterConfig, Connection, InDoubt, Outcome};
use si_rep::driver::{Driver, DriverConfig, Policy};
use std::sync::Arc;
use std::time::Duration;

fn cluster(n: usize) -> Arc<Cluster> {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).build()));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    c
}

#[test]
fn case3_commit_submitted_resolved_as_committed() {
    // The commit reached the middleware, was multicast (uniform delivery!),
    // and the replica crashed before answering the client. The driver must
    // resolve the in-doubt transaction to COMMITTED at the new replica —
    // the fully transparent case the paper highlights.
    let c = cluster(3);
    // Use a session directly so we can control the crash point: commit,
    // let the writeset replicate, then crash before the client "hears" it.
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
    let xact = s.xact_id().unwrap();
    s.commit().unwrap(); // writeset delivered everywhere
    assert!(c.quiesce(Duration::from_secs(5)));
    c.crash(0);
    // A failed-over driver would now inquire; do what it does.
    let outcome = c.node(1).inquire(xact).unwrap();
    assert_eq!(outcome, InDoubt::Known(Outcome::Committed));
    // And the data is there.
    let mut s1 = c.session(1);
    let r = s1.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    assert_eq!(r.rows().len(), 1);
    s1.commit().unwrap();
}

#[test]
fn case3_never_received_resolved_as_aborted() {
    let c = cluster(2);
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (2, 2)").unwrap();
    let xact = s.xact_id().unwrap();
    // Crash before the commit request: no writeset ever multicast.
    c.crash(0);
    assert!(matches!(s.commit(), Err(DbError::Aborted(_))));
    assert_eq!(c.node(1).inquire(xact).unwrap(), InDoubt::NeverReceived);
    // Nothing leaked to the survivor.
    let mut s1 = c.session(1);
    let r = s1.execute("SELECT v FROM kv WHERE k = 2").unwrap();
    assert!(r.rows().is_empty());
    s1.commit().unwrap();
}

#[test]
fn inquiry_for_a_live_origin_waits_instead_of_declaring_never_received() {
    // Regression test: group formation delivers the view changes one join
    // at a time ([R0], [R0,R1], [R0,R1,R2]), and the departure bookkeeping
    // must not read the not-yet-joined replicas as crashed incarnations.
    // It once did — every replica permanently held (later_replica, 0) in
    // its departed set, so an in-doubt inquiry that raced ahead of the
    // writeset's delivery answered NeverReceived for a transaction that
    // then committed everywhere: an acknowledged-lost commit.
    let c = cluster(3);
    let mut s = c.session(2);
    s.execute("INSERT INTO kv VALUES (5, 5)").unwrap();
    let xact = s.xact_id().unwrap();
    // Inquire at another replica *before* the writeset exists. The origin
    // is alive, so the only correct behaviour is to wait for the outcome.
    let inquirer = {
        let n = c.node(1);
        std::thread::spawn(move || n.inquire(xact))
    };
    std::thread::sleep(Duration::from_millis(50));
    s.commit().unwrap();
    assert_eq!(inquirer.join().unwrap().unwrap(), InDoubt::Known(Outcome::Committed));
}

#[test]
fn driver_masks_crash_between_transactions() {
    let c = cluster(3);
    let d = Driver::new(Arc::clone(&c), DriverConfig::builder().policy(Policy::Primary).build());
    let mut conn = d.connect().unwrap();
    conn.execute("INSERT INTO kv VALUES (10, 1)").unwrap();
    conn.commit().unwrap();
    assert!(c.quiesce(Duration::from_secs(5)));
    let before = conn.replica();
    c.crash(before.index());
    // §5.4 case 1: between transactions the failover is invisible.
    let r = conn.execute("SELECT v FROM kv WHERE k = 10").unwrap();
    assert_eq!(r.rows().len(), 1);
    conn.commit().unwrap();
    assert_ne!(conn.replica(), before);
}

#[test]
fn driver_reports_lost_transaction_and_recovers() {
    let c = cluster(3);
    let d = Driver::new(Arc::clone(&c), DriverConfig::builder().policy(Policy::Primary).build());
    let mut conn = d.connect().unwrap();
    conn.execute("INSERT INTO kv VALUES (20, 1)").unwrap(); // txn open
    c.crash(conn.replica().index());
    // §5.4 case 2: the open transaction is lost; the error is retryable.
    let err = conn.execute("INSERT INTO kv VALUES (21, 1)").unwrap_err();
    match err {
        DbError::Aborted(reason) => assert!(reason.is_retryable()),
        other => panic!("unexpected: {other:?}"),
    }
    // Retry the whole transaction on the failed-over connection.
    conn.execute("INSERT INTO kv VALUES (20, 1)").unwrap();
    conn.execute("INSERT INTO kv VALUES (21, 1)").unwrap();
    conn.commit().unwrap();
    assert!(c.quiesce(Duration::from_secs(5)));
    for k in c.alive() {
        assert_eq!(k.database().table_len("kv"), 2);
    }
}

#[test]
fn sequential_crashes_until_one_replica_left() {
    let c = cluster(3);
    let d = Driver::new(Arc::clone(&c), DriverConfig::default());
    let mut conn = d.connect().unwrap();
    for round in 0..2 {
        conn.execute(&format!("INSERT INTO kv VALUES ({round}, 0)"))
            .or_else(|e| {
                assert!(matches!(e, DbError::Aborted(AbortReason::ReplicaCrashed)));
                conn.execute(&format!("INSERT INTO kv VALUES ({round}, 0)"))
            })
            .unwrap();
        conn.commit().unwrap();
        assert!(c.quiesce(Duration::from_secs(5)));
        let victim = conn.replica();
        c.crash(victim.index());
    }
    // One replica left; it has everything.
    let survivors = c.alive();
    assert_eq!(survivors.len(), 1);
    assert_eq!(survivors[0].database().table_len("kv"), 2);
}
