//! Reproduces §4.2's **hidden deadlock** — the cycle spanning the
//! middleware queue and the database lock table that plain SRCA (Fig. 1)
//! suffers from — and shows that adjustment 2 (concurrent commits) resolves
//! it.
//!
//! The construction (2 replicas, keys x and y initialized everywhere):
//!
//! 1. `T_j` local at R0 updates `y` → holds y's tuple lock at R0;
//! 2. `T_r` local at R1 updates `y`, commits → validated, queued at R0;
//!    R0's applier starts applying `WS_r = {y}` and blocks behind `T_j`;
//! 3. `T_i` local at R0 updates `x`, requests commit → validation passes
//!    (disjoint from `T_r`), queued at R0 *behind* `T_r`. With the serial
//!    queue, `T_i`'s commit now waits for `T_r`;
//! 4. `T_j` updates `x` → blocks behind `T_i` inside the database.
//!
//! Database wait graph: `T_j → T_i`, `T_r → T_j` — no cycle. Middleware:
//! `T_i → T_r`. Together: `T_i → T_r → T_j → T_i`. Stuck.

use si_rep::core::srca::{Srca, SrcaConfig, SrcaVariant};
use si_rep::core::Connection;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn setup(variant: SrcaVariant) -> Srca {
    let sys = Srca::new(SrcaConfig::test(2, variant));
    sys.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    let mut s = sys.session(0);
    s.execute("INSERT INTO kv VALUES (1, 0)").unwrap(); // x
    s.execute("INSERT INTO kv VALUES (2, 0)").unwrap(); // y
    s.commit().unwrap();
    assert!(sys.quiesce(Duration::from_secs(5)));
    sys
}

/// Drive the §4.2 interleaving. Returns (completed, ti_result) where
/// `completed` says whether all participants terminated within the budget.
fn drive(sys: &Srca) -> bool {
    // 1. T_j at R0 holds y.
    let mut tj = sys.session(0);
    tj.execute("UPDATE kv SET v = 10 WHERE k = 2").unwrap();

    // 2. T_r at R1 updates y and commits; its writeset queues at R0 and
    //    blocks behind T_j inside the database.
    let mut tr = sys.session(1);
    tr.execute("UPDATE kv SET v = 20 WHERE k = 2").unwrap();
    tr.commit().unwrap();
    // Give R0's applier time to start applying WS_r and block.
    thread::sleep(Duration::from_millis(150));

    // 3. T_i at R0 updates x and requests commit (validation passes; queued
    //    behind T_r in R0's queue).
    let ti_done = Arc::new(AtomicBool::new(false));
    let ti_handle = {
        let ti_done = Arc::clone(&ti_done);
        let mut ti = sys.session(0);
        thread::spawn(move || {
            ti.execute("UPDATE kv SET v = 30 WHERE k = 1").unwrap();
            let r = ti.commit();
            ti_done.store(true, Ordering::SeqCst);
            r
        })
    };
    thread::sleep(Duration::from_millis(150));

    // 4. T_j requests x → blocks behind T_i inside the database (or, with
    //    adjustment 2, T_i has already committed and T_j aborts on the
    //    version check).
    let tj_done = Arc::new(AtomicBool::new(false));
    let tj_handle = {
        let tj_done = Arc::clone(&tj_done);
        thread::spawn(move || {
            let r = tj.execute("UPDATE kv SET v = 40 WHERE k = 1");
            let c = match r {
                Ok(_) => tj.commit(),
                Err(e) => Err(e),
            };
            tj_done.store(true, Ordering::SeqCst);
            c
        })
    };

    // Wait and see whether the system makes progress.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        if ti_done.load(Ordering::SeqCst) && tj_done.load(Ordering::SeqCst) {
            let _ = ti_handle.join();
            let _ = tj_handle.join();
            return true;
        }
        thread::sleep(Duration::from_millis(20));
    }
    // Leak the stuck threads; the caller shuts the system down, which wakes
    // them with Shutdown errors.
    std::thread::spawn(move || {
        let _ = ti_handle.join();
        let _ = tj_handle.join();
    });
    false
}

#[test]
fn serial_srca_exhibits_the_hidden_deadlock() {
    let sys = setup(SrcaVariant::Serial);
    let completed = drive(&sys);
    assert!(!completed, "Fig. 1 SRCA with serial queues should stall on the §4.2 construction");
    // The queues are stuck too.
    assert!(!sys.quiesce(Duration::from_millis(500)));
    sys.shutdown();
}

#[test]
fn concurrent_commit_resolves_the_hidden_deadlock() {
    let sys = setup(SrcaVariant::ConcurrentCommit);
    let completed = drive(&sys);
    assert!(completed, "adjustment 2 must break the middleware/database cycle");
    assert!(sys.quiesce(Duration::from_secs(5)));
    // Replicas converge.
    for k in 0..2 {
        let mut s = sys.session(k);
        let r = s.execute("SELECT v FROM kv WHERE k = 2").unwrap();
        assert_eq!(r.rows()[0][0], si_rep::storage::Value::Int(20));
        s.commit().unwrap();
    }
}

#[test]
fn hole_sync_also_resolves_it() {
    let sys = setup(SrcaVariant::HoleSync);
    let completed = drive(&sys);
    assert!(completed, "adjustments 2+3 must remain deadlock-free");
    assert!(sys.quiesce(Duration::from_secs(5)));
}
