//! Counterexample replay: sirep-model's minimal violating schedules,
//! driven deterministically against the real node via pause-points.
//!
//! Each test replays, step for step, the counterexample the explorer
//! emits for the seeded mutant matching a real pre-fix bug (the model's
//! journal-vocabulary trace is quoted in the comments). Pre-fix these
//! tests fail; post-fix they pass — they are the regression lock on the
//! two bugs this round of model checking found in `sirep-core`.

use si_rep::core::{
    Cluster, ClusterConfig, Connection, InDoubt, Outcome, PausePoint, ReplicationMode,
};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const Q: Duration = Duration::from_secs(10);

fn cluster(mode: ReplicationMode) -> Arc<Cluster> {
    let cfg = ClusterConfig::builder().replicas(2).mode(mode).build();
    let c = Arc::new(Cluster::new(cfg));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q), "seed failed to drain");
    c
}

fn wait_parked(c: &Cluster, p: PausePoint) {
    let deadline = std::time::Instant::now() + Q;
    while c.pause_reached(p) == 0 {
        assert!(std::time::Instant::now() < deadline, "no thread reached pause point {p:?}");
        std::thread::yield_now();
    }
}

/// sirep-model counterexample, mutant `nonatomic-begin-snapshot`, scope
/// 2x2, P3-capture-agreement (8 steps):
///
/// ```text
///  1. T0 attempts to begin at R0                    (TxBegin)
///  2. T0 records its snapshot watermark at R0
///  3. T0 requests commit at R0                      (CertCapture, Multicast)
///  4. T1 attempts to begin at R0                    <- engine snapshot taken
///  5. R0 processes its next total-order delivery    (TotalOrderDeliver,
///                                                    ValidationVerdict tid=G1)
///  6. T0 commits on its session thread at R0        (Commit tid=G1)
///  7. T1 records its snapshot watermark at R0       <- watermark = G1, stale read
///  8. read-only T1 commits on the fast path         (LocalReadOnly snapshot=G1)
/// ```
///
/// Pre-fix, `SrcaOpt::begin_local` ran `db.begin()` *before* taking the
/// state lock, so T0's commit (steps 5–6) could land between T1's engine
/// snapshot (step 4) and its watermark capture (step 7): the journaled
/// `LocalReadOnly` then claims a snapshot containing G1 while the SELECT
/// read the pre-G1 value. The pause-point parks T1 exactly in that window.
#[cfg(feature = "trace")]
#[test]
fn replay_p3_nonatomic_opt_begin_snapshot() {
    use si_rep::common::EventKind;

    let c = cluster(ReplicationMode::SrcaOpt);
    c.arm_pause(PausePoint::OptBeginPreLock, 0);

    // Step 4: T1's begin parks at the pause-point (pre-fix: after its
    // engine snapshot exists; post-fix: before it is taken).
    let reader = {
        let c = Arc::clone(&c);
        std::thread::spawn(move || {
            let mut s = c.session(0);
            let r = s.execute("SELECT v FROM kv WHERE k = 1").unwrap();
            let v = r.rows()[0][0].as_int().unwrap();
            s.commit().unwrap();
            v
        })
    };
    wait_parked(&c, PausePoint::OptBeginPreLock);

    // Steps 1–3, 5–6: T0 updates the row and commits while T1 is parked in
    // the begin window. T0 runs at R1 (a session at R0 would park at the
    // same begin pause-point); its writeset reaches R0 through the applier
    // path, which advances R0's commit frontier all the same.
    let update_xact = {
        let mut s = c.session(1);
        s.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
        s.commit().unwrap();
        s.last_xact_id().expect("update ran")
    };
    // Hold until R0 has applied the update (T1 is parked, so R0's frontier
    // advance is observable only through its journal).
    let deadline = std::time::Instant::now() + Q;
    loop {
        let committed_at_r0 = c.journal_events()[0]
            .1
            .iter()
            .any(|e| matches!(e.kind, EventKind::Commit { xact, .. } if xact == update_xact));
        if committed_at_r0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "R0 never applied the update");
        std::thread::yield_now();
    }

    // Steps 7–8: release T1; it finishes its begin, reads, and fast-path
    // commits.
    c.release_pause(PausePoint::OptBeginPreLock);
    let read_value = reader.join().unwrap();
    assert!(c.quiesce(Q), "cluster failed to drain");

    // The journaled snapshot must agree with what the SELECT actually saw:
    // if the LocalReadOnly snapshot includes the update's tid, the read
    // must have seen the updated value.
    let journals = c.journal_events();
    let r0 = &journals[0].1;
    let update_tid = r0
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Commit { xact, tid } if xact == update_xact => Some(tid),
            _ => None,
        })
        .expect("update commit journaled at R0");
    let ro_snapshot = r0
        .iter()
        .find_map(|e| match e.kind {
            EventKind::LocalReadOnly { snapshot, .. } => Some(snapshot),
            _ => None,
        })
        .expect("read-only fast-path commit journaled at R0");
    if ro_snapshot >= update_tid {
        assert_eq!(
            read_value, 11,
            "journaled read-only snapshot {ro_snapshot} claims the update (tid \
             {update_tid}) but the SELECT read the pre-update value — the \
             begin's engine snapshot and watermark capture were not atomic \
             (sirep-model P3-capture-agreement)"
        );
    }
    // The schedule pins T1's watermark capture after the update commit, so
    // the interesting branch above is the one actually taken.
    assert!(ro_snapshot >= update_tid, "pause did not hold T1 across the update commit");
}

/// sirep-model counterexample, mutant `eager-inquire`, scope 2x2-crash,
/// P7-session-order (5 steps):
///
/// ```text
///  1. T0 attempts to begin at R0                    (TxBegin)
///  2. T0 requests commit at R0                      (CertCapture, Multicast)
///  3. R0 crash-stops
///  4. R1 processes its next total-order delivery    (TotalOrderDeliver,
///                                                    ValidationVerdict tid=G1)
///  5. in-doubt T0 is resolved at R1                 <- tid G1 not yet
///                                                      committed at R1
/// ```
///
/// Pre-fix, `inquire` answered `Known(Committed)` straight from the
/// outcome log, which is written at *validation* time — before the
/// writeset leaves R1's tocommit queue. A failed-over client told
/// "committed" could begin its next transaction at R1 and miss its own
/// write. The pause-point parks R1's applier between claim and commit,
/// holding the protocol exactly in the step-4→5 window; the crash of R0
/// is elided because the bug is R1-local (the driver's failover path
/// calls the same `inquire`).
#[test]
fn replay_p7_inquire_before_apply() {
    let c = cluster(ReplicationMode::SrcaRep);
    c.arm_pause(PausePoint::ApplierBeforeCommit, 1);

    // Steps 1–2 (+R0's local part of 4): T0 updates and commits at R0.
    let xact = {
        let mut s = c.session(0);
        s.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
        s.commit().unwrap();
        s.last_xact_id().expect("update ran")
    };

    // Step 4 at R1: delivery validates T0 (outcome now Committed) and the
    // applier claims it, then parks before the local commit.
    wait_parked(&c, PausePoint::ApplierBeforeCommit);

    // Step 5: a failed-over client asks R1 for T0's fate, then immediately
    // reads what it was just promised.
    let (tx, rx) = mpsc::channel();
    let probe = {
        let c = Arc::clone(&c);
        std::thread::spawn(move || {
            let node = Arc::clone(c.session(1).node());
            let fate = node.inquire(xact).unwrap();
            assert_eq!(fate, InDoubt::Known(Outcome::Committed), "T0 validated as committed");
            let mut s = c.session(1);
            let r = s.execute("SELECT v FROM kv WHERE k = 1").unwrap();
            let v = r.rows()[0][0].as_int().unwrap();
            s.commit().unwrap();
            tx.send(v).unwrap();
        })
    };
    // Post-fix the inquire blocks until the write is locally visible, so
    // release after a grace period; pre-fix it answers inside the window
    // and the read below sees the stale value.
    let v = match rx.recv_timeout(Duration::from_millis(300)) {
        Ok(v) => v,
        Err(_) => {
            c.release_pause(PausePoint::ApplierBeforeCommit);
            rx.recv().unwrap()
        }
    };
    c.release_pause(PausePoint::ApplierBeforeCommit);
    probe.join().unwrap();
    assert_eq!(
        v, 11,
        "R1 reported T0 committed, but a session beginning right after the \
         answer missed the write — inquire answered from the validation-time \
         outcome log before local apply (sirep-model P7-session-order)"
    );
    assert!(c.quiesce(Q), "cluster failed to drain");
}
