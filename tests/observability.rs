//! Observability-layer tests: the metrics accounting invariant, per-stage
//! trace coverage for committed transactions, and TxTrace mark ordering.
//!
//! These pin down the two contracts the harnesses depend on:
//! 1. every `begin_local` ends in exactly one terminal counter, so
//!    `begins_total == commits_* + aborts_*` holds after a quiesce;
//! 2. a committed update transaction marks every lifecycle stage, on the
//!    origin replica and on the remote appliers, so the fig5/fig7
//!    breakdown tables never show a silently-missing stage.

use si_rep::common::Metrics;
use si_rep::core::{Cluster, ClusterConfig, Connection};
use std::sync::Arc;
use std::time::Duration;

#[cfg(feature = "trace")]
use si_rep::common::{Stage, TxTrace};

const Q: Duration = Duration::from_secs(20);

fn cluster(n: usize) -> Arc<Cluster> {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).build()));
    c.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
    c
}

/// Seed rows through a session; returns how many update commits that took.
fn seed_rows(c: &Cluster, rows: i64) -> u64 {
    let mut s = c.session(0);
    for id in 0..rows {
        s.execute(&format!("INSERT INTO acc VALUES ({id}, 1000)")).unwrap();
    }
    s.commit().unwrap();
    1
}

/// Every transaction begin must end in exactly one terminal counter:
/// commit (update or read-only) or abort (validation, serialization,
/// deadlock, or user rollback). Drives all five terminal paths, then
/// checks the books balance cluster-wide.
#[test]
fn metrics_accounting_invariant() {
    let c = cluster(2);
    let mut update_commits = seed_rows(&c, 10);

    let mut s = c.session(0);
    // Committed updates.
    for id in 0..5 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}")).unwrap();
        s.commit().unwrap();
        update_commits += 1;
    }
    // Committed read-only transactions (empty-writeset fast path).
    for _ in 0..3 {
        s.execute("SELECT SUM(bal) FROM acc").unwrap();
        s.commit().unwrap();
    }
    // User rollbacks.
    for _ in 0..2 {
        s.execute("UPDATE acc SET bal = 0 WHERE id = 1").unwrap();
        s.rollback();
    }
    // A database-level serialization failure: t1 snapshots, a rival updates
    // and commits the row, then t1's write of the same row must abort
    // (first-committer-wins inside the engine).
    s.execute("SELECT bal FROM acc WHERE id = 3").unwrap();
    {
        let mut rival = c.session(0);
        rival.execute("UPDATE acc SET bal = bal + 7 WHERE id = 3").unwrap();
        rival.commit().unwrap();
        update_commits += 1;
    }
    let err = s.execute("UPDATE acc SET bal = bal + 9 WHERE id = 3").unwrap_err();
    assert!(err.is_abort(), "stale write should abort, got {err:?}");

    assert!(c.quiesce(Q), "cluster failed to drain");
    let report = c.metrics();

    // ClusterReport derefs to Metrics, so counter reads go straight through.
    let begins = Metrics::get(&report.begins_total);
    let terminal = Metrics::get(&report.commits_update)
        + Metrics::get(&report.commits_readonly)
        + Metrics::get(&report.aborts_validation)
        + Metrics::get(&report.aborts_serialization)
        + Metrics::get(&report.aborts_deadlock)
        + Metrics::get(&report.aborts_user);
    assert_eq!(
        begins,
        terminal,
        "begins_total must equal the sum of terminal outcomes \
         (summary: {})",
        report.summary()
    );

    assert_eq!(Metrics::get(&report.commits_update), update_commits);
    assert_eq!(Metrics::get(&report.commits_readonly), 3);
    assert_eq!(Metrics::get(&report.aborts_user), 2);
    assert_eq!(Metrics::get(&report.aborts_serialization), 1);

    // The derived-rates bundle is consistent with the raw counters: no
    // forced aborts besides the serialization failure occurred.
    let rates = report.rates();
    assert!(rates.abort_rate > 0.0 && rates.abort_rate < 0.2);
    assert_eq!(rates.ws_discard_rate, 0.0);
}

/// A committed update transaction leaves a sample in every lifecycle stage
/// it passes through: execute/ws-extract/deliver/validate/commit/total on
/// the origin, deliver/validate/apply/commit on the remote replica.
#[cfg(feature = "trace")]
#[test]
fn committed_txns_mark_every_stage() {
    let c = cluster(2);
    let updates = 20 + seed_rows(&c, 8);
    let readonly = 4u64;

    let mut s = c.session(0);
    for i in 0..20 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {}", i % 8)).unwrap();
        s.commit().unwrap();
    }
    for _ in 0..readonly {
        s.execute("SELECT COUNT(id) FROM acc").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q), "cluster failed to drain");

    let report = c.metrics();
    let origin = &report.per_node[0].stages;
    let remote = &report.per_node[1].stages;

    // Origin replica: the full local lifecycle. Read-only commits skip the
    // writeset stages but still mark execute/commit/total.
    assert_eq!(origin.count(Stage::Execute), updates + readonly);
    assert_eq!(origin.count(Stage::WsExtract), updates);
    assert_eq!(origin.count(Stage::GcsDeliver), updates);
    assert_eq!(origin.count(Stage::ValidateQueue), updates);
    assert_eq!(origin.count(Stage::Commit), updates + readonly);
    assert_eq!(origin.count(Stage::Total), updates + readonly);
    assert_eq!(origin.count(Stage::Apply), 0, "origin never remote-applies its own writesets");

    // Remote replica: the applier-side lifecycle, one sample per writeset.
    assert_eq!(remote.count(Stage::GcsDeliver), updates);
    assert_eq!(remote.count(Stage::ValidateQueue), updates);
    assert_eq!(remote.count(Stage::Apply), updates);
    assert_eq!(remote.count(Stage::Commit), updates);
    assert_eq!(remote.count(Stage::Execute), 0);
    assert_eq!(remote.count(Stage::Total), 0, "total is a client-side latency");

    // The merged cluster-wide snapshot is the per-node sum.
    assert_eq!(report.stages.count(Stage::Commit), 2 * updates + readonly);
    assert!(!report.stages.is_empty());
    // And the human-readable table renders a line per stage with samples.
    let table = report.breakdown_table();
    assert!(table.contains("apply") && table.contains("execute"), "table:\n{table}");
}

/// Stage offsets recorded by a trace are monotone in lifecycle order: a
/// later stage never reports an earlier completion time.
#[cfg(feature = "trace")]
#[test]
fn trace_offsets_are_monotone_and_complete() {
    let mut t = TxTrace::start();
    for stage in Stage::ALL {
        t.mark(stage);
    }
    let t = t.finish();
    assert!(t.has_all(&Stage::ALL), "every marked stage must be present");
    let mut last = 0u64;
    for stage in Stage::ALL {
        let off = t.offset_ns(stage).expect("marked stage has an offset");
        assert!(off >= last, "{} regressed: {off} < {last}", stage.name());
        last = off;
        // Per-stage latency is the gap to the latest earlier mark — never
        // negative, never missing once the stage is marked.
        assert!(t.stage_ns(stage).is_some());
    }
}
