//! Observability-layer tests: the metrics accounting invariant, per-stage
//! trace coverage for committed transactions, and TxTrace mark ordering.
//!
//! These pin down the two contracts the harnesses depend on:
//! 1. every `begin_local` ends in exactly one terminal counter, so
//!    `begins_total == commits_* + aborts_*` holds after a quiesce;
//! 2. a committed update transaction marks every lifecycle stage, on the
//!    origin replica and on the remote appliers, so the fig5/fig7
//!    breakdown tables never show a silently-missing stage.

use si_rep::common::Metrics;
use si_rep::core::{Cluster, ClusterConfig, Connection};
use std::sync::Arc;
use std::time::Duration;

#[cfg(feature = "trace")]
use si_rep::common::{Stage, TxTrace};

const Q: Duration = Duration::from_secs(20);

fn cluster(n: usize) -> Arc<Cluster> {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).build()));
    c.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
    c
}

/// Seed rows through a session; returns how many update commits that took.
fn seed_rows(c: &Cluster, rows: i64) -> u64 {
    let mut s = c.session(0);
    for id in 0..rows {
        s.execute(&format!("INSERT INTO acc VALUES ({id}, 1000)")).unwrap();
    }
    s.commit().unwrap();
    1
}

/// Every transaction begin must end in exactly one terminal counter:
/// commit (update or read-only) or abort (validation, serialization,
/// deadlock, or user rollback). Drives all five terminal paths, then
/// checks the books balance cluster-wide.
#[test]
fn metrics_accounting_invariant() {
    let c = cluster(2);
    let mut update_commits = seed_rows(&c, 10);

    let mut s = c.session(0);
    // Committed updates.
    for id in 0..5 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}")).unwrap();
        s.commit().unwrap();
        update_commits += 1;
    }
    // Committed read-only transactions (empty-writeset fast path).
    for _ in 0..3 {
        s.execute("SELECT SUM(bal) FROM acc").unwrap();
        s.commit().unwrap();
    }
    // User rollbacks.
    for _ in 0..2 {
        s.execute("UPDATE acc SET bal = 0 WHERE id = 1").unwrap();
        s.rollback();
    }
    // A database-level serialization failure: t1 snapshots, a rival updates
    // and commits the row, then t1's write of the same row must abort
    // (first-committer-wins inside the engine).
    s.execute("SELECT bal FROM acc WHERE id = 3").unwrap();
    {
        let mut rival = c.session(0);
        rival.execute("UPDATE acc SET bal = bal + 7 WHERE id = 3").unwrap();
        rival.commit().unwrap();
        update_commits += 1;
    }
    let err = s.execute("UPDATE acc SET bal = bal + 9 WHERE id = 3").unwrap_err();
    assert!(err.is_abort(), "stale write should abort, got {err:?}");

    assert!(c.quiesce(Q), "cluster failed to drain");
    let report = c.metrics();

    // ClusterReport derefs to Metrics, so counter reads go straight through.
    let begins = Metrics::get(&report.begins_total);
    let terminal = Metrics::get(&report.commits_update)
        + Metrics::get(&report.commits_readonly)
        + Metrics::get(&report.aborts_validation)
        + Metrics::get(&report.aborts_serialization)
        + Metrics::get(&report.aborts_deadlock)
        + Metrics::get(&report.aborts_user);
    assert_eq!(
        begins,
        terminal,
        "begins_total must equal the sum of terminal outcomes \
         (summary: {})",
        report.summary()
    );

    assert_eq!(Metrics::get(&report.commits_update), update_commits);
    assert_eq!(Metrics::get(&report.commits_readonly), 3);
    assert_eq!(Metrics::get(&report.aborts_user), 2);
    assert_eq!(Metrics::get(&report.aborts_serialization), 1);

    // The derived-rates bundle is consistent with the raw counters: no
    // forced aborts besides the serialization failure occurred.
    let rates = report.rates();
    assert!(rates.abort_rate > 0.0 && rates.abort_rate < 0.2);
    assert_eq!(rates.ws_discard_rate, 0.0);
}

/// A committed update transaction leaves a sample in every lifecycle stage
/// it passes through: execute/ws-extract/deliver/validate/commit/total on
/// the origin, deliver/validate/apply/commit on the remote replica.
#[cfg(feature = "trace")]
#[test]
fn committed_txns_mark_every_stage() {
    let c = cluster(2);
    let updates = 20 + seed_rows(&c, 8);
    let readonly = 4u64;

    let mut s = c.session(0);
    for i in 0..20 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {}", i % 8)).unwrap();
        s.commit().unwrap();
    }
    for _ in 0..readonly {
        s.execute("SELECT COUNT(id) FROM acc").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q), "cluster failed to drain");

    let report = c.metrics();
    let origin = &report.per_node[0].stages;
    let remote = &report.per_node[1].stages;

    // Origin replica: the full local lifecycle. Read-only commits skip the
    // writeset stages but still mark execute/commit/total.
    assert_eq!(origin.count(Stage::Execute), updates + readonly);
    assert_eq!(origin.count(Stage::WsExtract), updates);
    assert_eq!(origin.count(Stage::GcsDeliver), updates);
    assert_eq!(origin.count(Stage::ValidateQueue), updates);
    assert_eq!(origin.count(Stage::Commit), updates + readonly);
    assert_eq!(origin.count(Stage::Total), updates + readonly);
    assert_eq!(origin.count(Stage::Apply), 0, "origin never remote-applies its own writesets");

    // Remote replica: the applier-side lifecycle, one sample per writeset.
    assert_eq!(remote.count(Stage::GcsDeliver), updates);
    assert_eq!(remote.count(Stage::ValidateQueue), updates);
    assert_eq!(remote.count(Stage::Apply), updates);
    assert_eq!(remote.count(Stage::Commit), updates);
    assert_eq!(remote.count(Stage::Execute), 0);
    assert_eq!(remote.count(Stage::Total), 0, "total is a client-side latency");

    // The merged cluster-wide snapshot is the per-node sum.
    assert_eq!(report.stages.count(Stage::Commit), 2 * updates + readonly);
    assert!(!report.stages.is_empty());
    // And the human-readable table renders a line per stage with samples.
    let table = report.breakdown_table();
    assert!(table.contains("apply") && table.contains("execute"), "table:\n{table}");
}

/// The protocol event journal captures the full lifecycle of an update
/// transaction: begin/cert/multicast/deliver/verdict/commit at the origin,
/// deliver/verdict/apply/commit at the remotes.
#[cfg(feature = "trace")]
#[test]
fn journal_records_the_protocol_lifecycle() {
    let c = cluster(2);
    seed_rows(&c, 4);
    let mut s = c.session(0);
    s.execute("UPDATE acc SET bal = bal + 1 WHERE id = 2").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q), "cluster failed to drain");

    let journals = c.journal_events();
    assert_eq!(journals.len(), 2);
    let names =
        |k: usize| -> Vec<&'static str> { journals[k].1.iter().map(|e| e.kind.name()).collect() };
    let origin = names(0);
    for expected in [
        "tx_begin",
        "cert_capture",
        "multicast",
        "total_order_deliver",
        "validation_verdict",
        "commit",
    ] {
        assert!(origin.contains(&expected), "origin journal missing {expected}: {origin:?}");
    }
    let remote = names(1);
    for expected in
        ["total_order_deliver", "validation_verdict", "apply_start", "apply_done", "commit"]
    {
        assert!(remote.contains(&expected), "remote journal missing {expected}: {remote:?}");
    }
    assert!(!remote.contains(&"tx_begin"), "remote never begins the origin's transaction");

    // Events carry the shared epoch: per-journal sequence numbers are
    // strictly increasing and timestamps are monotone.
    for (_, events) in &journals {
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].at_ns >= w[0].at_ns);
        }
    }
}

/// With tracing compiled out, the journal API still exists but records
/// nothing; with it on, records are kept up to the bounded capacity.
#[test]
fn journal_stub_has_same_api() {
    use si_rep::common::{EventKind, Journal, ReplicaId, XactId};
    let j = Journal::with_epoch(ReplicaId::new(0), std::time::Instant::now(), 4);
    for seq in 0..6 {
        j.record(EventKind::TxBegin { xact: XactId::new(ReplicaId::new(0), seq) });
    }
    let events = j.snapshot();
    if cfg!(feature = "trace") {
        assert_eq!(events.len(), 4, "ring keeps the newest `capacity` events");
        assert_eq!(j.dropped(), 2);
        assert_eq!(events[0].kind.name(), "tx_begin");
    } else {
        assert!(events.is_empty());
        assert_eq!(j.dropped(), 0);
    }
}

/// The Perfetto/Chrome-trace export is well-formed JSON (checked with a
/// small validating parser, since the workspace has no JSON dependency) and
/// contains a process per replica.
#[test]
fn perfetto_export_is_valid_json() {
    let c = cluster(2);
    seed_rows(&c, 4);
    let mut s = c.session(0);
    for id in 0..4 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}")).unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q), "cluster failed to drain");

    let doc = c.perfetto_json();
    json_check::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON at byte {e}: {doc}"));
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"replica R0\"") && doc.contains("\"replica R1\""));
    if cfg!(feature = "trace") {
        assert!(doc.contains("\"ph\":\"X\""), "expected complete spans in {doc}");
    }
}

/// The Prometheus rendering follows the text exposition format: every
/// non-comment line is `name[{labels}] value`, each family has HELP/TYPE,
/// and the key protocol series are present.
#[test]
fn prometheus_export_is_well_formed() {
    let c = cluster(2);
    seed_rows(&c, 4);
    let mut s = c.session(0);
    s.execute("UPDATE acc SET bal = bal + 1 WHERE id = 1").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q), "cluster failed to drain");

    let text = c.metrics().prometheus_text();
    let mut families = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families.insert(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // name{labels} value | name value
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(value.parse::<f64>().is_ok(), "non-numeric value in: {line}");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
            "bad metric name in: {line}"
        );
        assert!(name.starts_with("sirep_"), "unprefixed metric: {line}");
        // Every sample's family was declared with a TYPE line first.
        let family = name.strip_suffix("_high_water").unwrap_or(name);
        assert!(
            families.contains(name) || families.contains(family),
            "sample before TYPE declaration: {line}"
        );
    }
    for needed in [
        "sirep_commits_update_total",
        "sirep_tocommit_depth",
        "sirep_ready_len",
        "sirep_cert_index_keys",
        "sirep_replica_alive",
        "sirep_audit_violations_total",
    ] {
        assert!(families.contains(needed), "missing family {needed} in:\n{text}");
    }
    assert!(text.contains("sirep_commits_update_total{replica=\"0\"}"));
    assert!(text.trim_end().ends_with("sirep_audit_violations_total 0"));
}

/// Queue-depth gauges: high-water marks never sit below a current reading,
/// and a run that certified writesets leaves a nonzero ws_list high-water.
#[cfg(feature = "trace")]
#[test]
fn gauges_track_queue_depths() {
    let c = cluster(2);
    seed_rows(&c, 6);
    let mut s = c.session(0);
    for id in 0..6 {
        s.execute(&format!("UPDATE acc SET bal = bal + 1 WHERE id = {id}")).unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q), "cluster failed to drain");

    let report = c.metrics();
    for node in &report.per_node {
        for (name, r) in node.gauges.fields() {
            assert!(
                r.high_water >= r.current,
                "{name} high-water below current at {}",
                node.replica
            );
        }
        assert!(node.gauges.ws_list_len.high_water > 0, "certification never ran?");
        assert!(node.gauges.cert_index_keys.high_water > 0, "index never held a key?");
        // After a quiesce nothing is eligible-but-unclaimed.
        assert_eq!(node.gauges.ready_len.current, 0, "ready set must drain");
    }
    // The cluster rollup maxes high-water marks over replicas.
    let max_hw = report.per_node.iter().map(|n| n.gauges.tocommit_depth.high_water).max().unwrap();
    assert_eq!(report.gauges.tocommit_depth.high_water, max_hw);
}

/// Minimal validating JSON parser used by the Perfetto test. Returns the
/// byte offset of the first error.
mod json_check {
    pub fn validate(s: &str) -> Result<(), usize> {
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(i)
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    expect(b, i, b':')?;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(*i),
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
        expect(b, i, b'"')?;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                _ if c < 0x20 => return Err(*i),
                _ => *i += 1,
            }
        }
        Err(*i)
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
        if *i > start && b[*i - 1].is_ascii_digit() {
            Ok(())
        } else {
            Err(start)
        }
    }

    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b[*i..].starts_with(lit) {
            *i += lit.len();
            Ok(())
        } else {
            Err(*i)
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), usize> {
        if b.get(*i) == Some(&c) {
            *i += 1;
            Ok(())
        } else {
            Err(*i)
        }
    }
}

/// Stage offsets recorded by a trace are monotone in lifecycle order: a
/// later stage never reports an earlier completion time.
#[cfg(feature = "trace")]
#[test]
fn trace_offsets_are_monotone_and_complete() {
    let mut t = TxTrace::start();
    for stage in Stage::ALL {
        t.mark(stage);
    }
    let t = t.finish();
    assert!(t.has_all(&Stage::ALL), "every marked stage must be present");
    let mut last = 0u64;
    for stage in Stage::ALL {
        let off = t.offset_ns(stage).expect("marked stage has an offset");
        assert!(off >= last, "{} regressed: {off} < {last}", stage.name());
        last = off;
        // Per-stage latency is the gap to the latest earlier mark — never
        // negative, never missing once the stage is marked.
        assert!(t.stage_ns(stage).is_some());
    }
}
