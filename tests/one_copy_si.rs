//! Property-based end-to-end verification of the paper's Theorem 1:
//! every execution SRCA-Rep produces is 1-copy-SI.
//!
//! proptest generates random transaction scripts (mixes of reads and
//! key-ranged updates, randomly assigned to replicas and interleaved by
//! real threads); the cluster records per-replica begin/commit histories
//! and readsets/writesets; the exact checker from `sirep_core::model`
//! decides whether a global SI-schedule exists.

use proptest::prelude::*;
use si_rep::core::{check_one_copy_si, Cluster, ClusterConfig, Connection, ReplicationMode};
use std::sync::Arc;
use std::time::Duration;

/// One client's transaction script.
#[derive(Debug, Clone)]
struct Script {
    steps: Vec<Txn>,
}

#[derive(Debug, Clone)]
enum Txn {
    ReadOnly { keys: Vec<u8> },
    Update { reads: Vec<u8>, writes: Vec<u8> },
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    let keys = prop::collection::vec(0u8..8, 1..4);
    prop_oneof![
        keys.clone().prop_map(|keys| Txn::ReadOnly { keys }),
        (prop::collection::vec(0u8..8, 0..3), prop::collection::vec(0u8..8, 1..3))
            .prop_map(|(reads, writes)| Txn::Update { reads, writes }),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    prop::collection::vec(txn_strategy(), 3..10).prop_map(|steps| Script { steps })
}

fn run_scripts(replicas: usize, scripts: Vec<Script>) {
    let cfg = ClusterConfig::builder()
        .replicas(replicas)
        .mode(ReplicationMode::SrcaRep)
        .track_history(true)
        .build();
    let cluster = Arc::new(Cluster::new(cfg));
    cluster.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    {
        let mut s = cluster.session(0);
        for k in 0..8 {
            s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)")).unwrap();
        }
        s.commit().unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(10)));
    // Drain setup history so the checked window starts clean... actually
    // keep it: the setup txn is part of the history and must also fit.
    let mut handles = Vec::new();
    for (i, script) in scripts.into_iter().enumerate() {
        let cluster = Arc::clone(&cluster);
        let node = i % replicas;
        handles.push(std::thread::spawn(move || {
            let mut s = cluster.session(node);
            for txn in script.steps {
                let result = (|| {
                    match &txn {
                        Txn::ReadOnly { keys } => {
                            for k in keys {
                                s.execute(&format!("SELECT v FROM kv WHERE k = {k}"))?;
                            }
                        }
                        Txn::Update { reads, writes } => {
                            for k in reads {
                                s.execute(&format!("SELECT v FROM kv WHERE k = {k}"))?;
                            }
                            for k in writes {
                                s.execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}"))?;
                            }
                        }
                    }
                    s.commit()
                })();
                if result.is_err() {
                    s.rollback();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(10)));
    let (specs, exec) = cluster.collect_history();
    if let Err(v) = check_one_copy_si(&specs, &exec) {
        panic!("1-copy-SI violated: {v}\nspecs: {specs:#?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 20,
        .. ProptestConfig::default()
    })]

    #[test]
    fn srca_rep_is_one_copy_si_2_replicas(
        scripts in prop::collection::vec(script_strategy(), 2..5)
    ) {
        run_scripts(2, scripts);
    }

    #[test]
    fn srca_rep_is_one_copy_si_3_replicas(
        scripts in prop::collection::vec(script_strategy(), 3..6)
    ) {
        run_scripts(3, scripts);
    }
}

/// Deterministic regression: the checker accepts a quiet sequential run.
#[test]
fn sequential_run_is_one_copy_si() {
    run_scripts(
        2,
        vec![Script {
            steps: vec![
                Txn::Update { reads: vec![0], writes: vec![1] },
                Txn::ReadOnly { keys: vec![0, 1] },
                Txn::Update { reads: vec![], writes: vec![0, 1] },
            ],
        }],
    );
}
