//! Online recovery (paper §8 future work, implemented as an extension):
//! a crashed replica re-joins via state transfer from a donor + catch-up
//! over the live total-order stream, while the rest of the cluster keeps
//! processing transactions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use si_rep::core::{Cluster, ClusterConfig, Connection};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const Q: Duration = Duration::from_secs(20);

fn cluster(n: usize) -> Arc<Cluster> {
    let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).build()));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    let mut s = c.session(0);
    for k in 0..10 {
        s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)")).unwrap();
    }
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    c
}

fn sum_at(c: &Cluster, k: usize) -> i64 {
    let mut s = c.session(k);
    let r = s.execute("SELECT SUM(v) FROM kv").unwrap();
    let v = r.rows()[0][0].as_int().unwrap();
    s.commit().unwrap();
    v
}

#[test]
fn recovered_replica_catches_up_quiescent() {
    let c = cluster(3);
    c.crash(2);
    // Work happens while replica 2 is down.
    let mut s = c.session(0);
    for _ in 0..5 {
        s.execute("UPDATE kv SET v = v + 1 WHERE k = 1").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    // Bring it back.
    c.recover(2).unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(c.alive().len(), 3);
    assert_eq!(sum_at(&c, 2), 5, "recovered replica missed writesets");
    // And it participates again: writes through it replicate everywhere.
    let mut s2 = c.session(2);
    s2.execute("UPDATE kv SET v = v + 10 WHERE k = 2").unwrap();
    s2.commit().unwrap();
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(sum_at(&c, k), 15, "replica {k} inconsistent after recovery");
    }
}

#[test]
fn recovery_under_live_load() {
    let c = cluster(3);
    c.crash(1);
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(std::sync::atomic::AtomicI64::new(0));
    let mut handles = Vec::new();
    for node in [0usize, 2] {
        let c2 = Arc::clone(&c);
        let stop2 = Arc::clone(&stop);
        let committed2 = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(node as u64);
            let mut s = c2.session(node);
            while !stop2.load(Ordering::Relaxed) {
                let k = rng.gen_range(0..10);
                let r = s
                    .execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}"))
                    .and_then(|_| s.commit());
                match r {
                    Ok(()) => {
                        committed2.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => s.rollback(),
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
    }
    // Let load run, recover mid-stream, keep loading, then stop.
    std::thread::sleep(Duration::from_millis(100));
    c.recover(1).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    let n = committed.load(Ordering::SeqCst);
    assert!(n > 0);
    for k in 0..3 {
        assert_eq!(sum_at(&c, k), n, "replica {k} diverged after live recovery");
    }
    // The recovered replica accepts local transactions.
    let mut s = c.session(1);
    s.execute("UPDATE kv SET v = v + 1 WHERE k = 0").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 0), n + 1);
}

#[test]
fn repeated_crash_and_recovery() {
    let c = cluster(2);
    for round in 1..=3i64 {
        c.crash(1);
        let mut s = c.session(0);
        s.execute(&format!("UPDATE kv SET v = v + {round} WHERE k = 3")).unwrap();
        s.commit().unwrap();
        assert!(c.quiesce(Q));
        c.recover(1).unwrap();
        assert!(c.quiesce(Q));
        let expect: i64 = (1..=round).sum();
        assert_eq!(sum_at(&c, 1), expect, "round {round}");
    }
}

#[test]
fn recover_rejects_live_replica() {
    let c = cluster(2);
    assert!(c.recover(0).is_err());
}

#[test]
fn recovery_transfers_indoubt_outcomes() {
    use si_rep::core::{InDoubt, Outcome};
    let c = cluster(3);
    let mut s = c.session(0);
    s.execute("UPDATE kv SET v = 7 WHERE k = 7").unwrap();
    let xact = s.xact_id().unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    c.crash(2);
    c.recover(2).unwrap();
    assert!(c.quiesce(Q));
    // The recovered replica can answer in-doubt inquiries about
    // transactions that committed before it even existed.
    let r = c.node(2).inquire(xact).unwrap();
    assert_eq!(r, InDoubt::Known(Outcome::Committed));
}

/// The donor crash-stops in the middle of the state transfer (via the
/// `mid_state_transfer` crash-point): the recovering replica must discard
/// the partial transfer and restart with another donor, not install state
/// from a dead one.
#[test]
fn donor_crash_mid_state_transfer_retries_with_another_donor() {
    use sirep_common::CrashPoint;
    let c = cluster(3);
    c.crash(2);
    let mut s = c.session(0);
    for _ in 0..5 {
        s.execute("UPDATE kv SET v = v + 1 WHERE k = 3").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    // recover() picks the lowest-id live donor first: replica 0. Arm the
    // crash-point there so the first transfer attempt dies under us.
    c.arm_crash_point(CrashPoint::MidStateTransfer, 0);
    c.recover(2).unwrap();
    assert!(c.armed_crash_points().is_empty(), "the crash-point must have fired");
    assert!(!c.node(0).is_alive(), "the donor crash-stopped mid-transfer");
    assert!(c.quiesce(Q));
    // The retry used replica 1 as donor, and the recovered node is whole.
    assert_eq!(sum_at(&c, 2), 5, "recovered replica installed a bad transfer");
    // The recovered replica is a first-class member again.
    let mut s2 = c.session(2);
    s2.execute("UPDATE kv SET v = v + 1 WHERE k = 4").unwrap();
    s2.commit().unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(sum_at(&c, 1), 6);
    assert!(c.audit_is_clean());
    // The fired point is on the donor's journal (trace builds only).
    #[cfg(feature = "trace")]
    {
        let events = c.journal_events();
        let fired = events.iter().find(|(id, _)| id.index() == 0).is_some_and(|(_, evs)| {
            evs.iter().any(|e| {
                matches!(
                    e.kind,
                    sirep_common::EventKind::CrashPointFired {
                        point: CrashPoint::MidStateTransfer
                    }
                )
            })
        });
        assert!(fired, "CrashPointFired must be journaled on the donor");
    }
}
